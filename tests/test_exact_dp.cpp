// Tests for the exact pseudo-polynomial DP: hand-checkable instances plus a
// parameterized equivalence sweep against independent exhaustive search.
#include "retask/core/exact_dp.hpp"

#include <gtest/gtest.h>

#include "retask/common/error.hpp"
#include "retask/core/exhaustive.hpp"
#include "retask/power/polynomial_power.hpp"
#include "test_util.hpp"

namespace retask {
namespace {

RejectionProblem tiny(std::vector<FrameTask> tasks, double penalty_free_capacity = 100.0) {
  EnergyCurve curve(PolynomialPowerModel::cubic(), 1.0, IdleDiscipline::kDormantEnable);
  return RejectionProblem(FrameTaskSet(std::move(tasks)), std::move(curve),
                          1.0 / penalty_free_capacity, 1);
}

TEST(ExactDp, AcceptsEverythingWhenPenaltiesDominate) {
  // Light load, huge penalties: rejecting anything is clearly wrong.
  const RejectionProblem p = tiny({{0, 20, 100.0}, {1, 30, 100.0}});
  const RejectionSolution s = ExactDpSolver().solve(p);
  EXPECT_EQ(s.accepted_count(), 2u);
  EXPECT_NEAR(s.objective(), 0.5 * 0.5 * 0.5, 1e-6);
}

TEST(ExactDp, RejectsEverythingWhenPenaltiesAreFree) {
  const RejectionProblem p = tiny({{0, 20, 0.0}, {1, 30, 0.0}});
  const RejectionSolution s = ExactDpSolver().solve(p);
  EXPECT_EQ(s.accepted_count(), 0u);
  EXPECT_NEAR(s.objective(), 0.0, 1e-12);
}

TEST(ExactDp, MustRejectUnderOverload) {
  // 80 + 80 = 160 > 100: at most one task fits.
  const RejectionProblem p = tiny({{0, 80, 1.0}, {1, 80, 2.0}});
  const RejectionSolution s = ExactDpSolver().solve(p);
  EXPECT_EQ(s.accepted_count(), 1u);
  // Keeping the higher-penalty task is optimal: E(0.8) + 1.0 < E(0.8) + 2.0.
  EXPECT_TRUE(s.accepted[1]);
  EXPECT_NEAR(s.objective(), 0.8 * 0.8 * 0.8 + 1.0, 1e-6);
}

TEST(ExactDp, PicksCrossoverCorrectly) {
  // One task whose penalty sits exactly between reject-all and accept-all
  // energies: E(0.6) = 0.216. Penalty 0.3 > 0.216 -> accept.
  const RejectionProblem accept_case = tiny({{0, 60, 0.3}});
  EXPECT_EQ(ExactDpSolver().solve(accept_case).accepted_count(), 1u);
  // Penalty 0.1 < 0.216 -> reject.
  const RejectionProblem reject_case = tiny({{0, 60, 0.1}});
  EXPECT_EQ(ExactDpSolver().solve(reject_case).accepted_count(), 0u);
}

TEST(ExactDp, OversizedTaskIsAlwaysRejected) {
  const RejectionProblem p = tiny({{0, 150, 50.0}, {1, 40, 0.5}});
  const RejectionSolution s = ExactDpSolver().solve(p);
  EXPECT_FALSE(s.accepted[0]);
}

TEST(ExactDp, GuardsMultiprocessorInstances) {
  ScenarioConfig config;
  config.processor_count = 2;
  const PolynomialPowerModel model = PolynomialPowerModel::xscale();
  const RejectionProblem p = make_scenario(config, model);
  EXPECT_THROW(ExactDpSolver().solve(p), Error);
}

// ---------------------------------------------------------------------------
// Property sweep: DP == exhaustive optimum on random instances across loads,
// penalty scales and idle disciplines.

struct DpSweepCase {
  double load;
  double penalty_scale;
  IdleDiscipline idle;
};

class ExactDpEquivalence : public ::testing::TestWithParam<DpSweepCase> {};

TEST_P(ExactDpEquivalence, MatchesExhaustiveOptimum) {
  const DpSweepCase& c = GetParam();
  const ExactDpSolver dp;
  const ExhaustiveSolver exhaustive;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const RejectionProblem p =
        test::small_instance(seed, 9, c.load, c.penalty_scale, 1, c.idle);
    const RejectionSolution a = dp.solve(p);
    const RejectionSolution b = exhaustive.solve(p);
    EXPECT_NEAR(a.objective(), b.objective(), 1e-6 * std::max(1.0, b.objective()))
        << "seed " << seed << " load " << c.load << " scale " << c.penalty_scale;
  }
}

INSTANTIATE_TEST_SUITE_P(
    LoadsAndScales, ExactDpEquivalence,
    ::testing::Values(DpSweepCase{0.6, 1.0, IdleDiscipline::kDormantEnable},
                      DpSweepCase{1.0, 1.0, IdleDiscipline::kDormantEnable},
                      DpSweepCase{1.6, 1.0, IdleDiscipline::kDormantEnable},
                      DpSweepCase{2.5, 1.0, IdleDiscipline::kDormantEnable},
                      DpSweepCase{1.4, 0.2, IdleDiscipline::kDormantEnable},
                      DpSweepCase{1.4, 5.0, IdleDiscipline::kDormantEnable},
                      DpSweepCase{1.2, 1.0, IdleDiscipline::kDormantDisable},
                      DpSweepCase{2.0, 0.5, IdleDiscipline::kDormantDisable}));

}  // namespace
}  // namespace retask
