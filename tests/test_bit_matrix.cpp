// BitMatrix: the bit-packed DP choice table. The interesting widths sit at
// the 64-bit word boundary (63/64/65 columns), where a packing bug would
// smear bits into the neighbouring row's words.
#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "retask/common/bit_matrix.hpp"

namespace retask {
namespace {

TEST(BitMatrix, StartsAllZero) {
  BitMatrix m;
  m.reset(3, 70);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 70; ++c) EXPECT_FALSE(m.test(r, c)) << r << "," << c;
  }
}

// One test body per width exercises set/test on every cell in a
// checkerboard, including both sides of the word boundary.
void exercise_width(std::size_t cols) {
  const std::size_t rows = 5;
  BitMatrix m;
  m.reset(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if ((r + c) % 2 == 0) m.set(r, c);
    }
  }
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      EXPECT_EQ(m.test(r, c), (r + c) % 2 == 0) << "cols=" << cols << " @" << r << "," << c;
    }
  }
}

TEST(BitMatrix, Width63) { exercise_width(63); }
TEST(BitMatrix, Width64) { exercise_width(64); }
TEST(BitMatrix, Width65) { exercise_width(65); }
TEST(BitMatrix, Width1) { exercise_width(1); }
TEST(BitMatrix, Width128) { exercise_width(128); }

TEST(BitMatrix, LastColumnOfRowDoesNotLeakIntoNextRow) {
  BitMatrix m;
  m.reset(2, 64);
  m.set(0, 63);  // last bit of row 0's only word
  EXPECT_TRUE(m.test(0, 63));
  for (std::size_t c = 0; c < 64; ++c) EXPECT_FALSE(m.test(1, c)) << c;

  m.reset(2, 65);
  m.set(0, 64);  // first bit of row 0's second word
  EXPECT_TRUE(m.test(0, 64));
  for (std::size_t c = 0; c < 65; ++c) EXPECT_FALSE(m.test(1, c)) << c;
}

TEST(BitMatrix, ResetClearsAndResizes) {
  BitMatrix m;
  m.reset(4, 100);
  m.set(3, 99);
  EXPECT_TRUE(m.test(3, 99));

  // Shrink: old bits must not survive into the reused buffer.
  m.reset(2, 10);
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 10; ++c) EXPECT_FALSE(m.test(r, c));
  }
  m.set(1, 9);

  // Regrow past the previous size.
  m.reset(6, 130);
  for (std::size_t r = 0; r < 6; ++r) {
    for (std::size_t c = 0; c < 130; ++c) EXPECT_FALSE(m.test(r, c));
  }
  m.set(5, 129);
  EXPECT_TRUE(m.test(5, 129));
}

TEST(BitMatrix, ResizeRowsPreservesExistingBitsAndZeroFillsNewRows) {
  BitMatrix m;
  m.reset(2, 100);  // two words per row
  m.set(0, 0);
  m.set(1, 99);

  // Grow: the filled prefix survives untouched, appended rows start clear.
  m.resize_rows(5);
  EXPECT_TRUE(m.test(0, 0));
  EXPECT_TRUE(m.test(1, 99));
  for (std::size_t r = 2; r < 5; ++r) {
    for (std::size_t c = 0; c < 100; ++c) EXPECT_FALSE(m.test(r, c)) << r << "," << c;
  }

  // Shrink, then regrow over the dropped range: shrinking trims the storage,
  // so the regrown rows must come back all-zero, not with their old bits.
  m.set(4, 50);
  m.resize_rows(3);
  m.resize_rows(5);
  EXPECT_FALSE(m.test(4, 50));
  EXPECT_TRUE(m.test(1, 99));
}

TEST(BitMatrix, ZeroRowsIsUsableAfterReset) {
  BitMatrix m;
  m.reset(0, 64);  // empty table (e.g. every task filtered out)
  m.reset(1, 1);
  EXPECT_FALSE(m.test(0, 0));
  m.set(0, 0);
  EXPECT_TRUE(m.test(0, 0));
}

}  // namespace
}  // namespace retask
