// Tests for task-file parsing/writing and CLI option parsing.
#include "retask/io/task_io.hpp"

#include <sstream>

#include <gtest/gtest.h>

#include "retask/common/error.hpp"
#include "retask/common/rng.hpp"
#include "retask/core/exact_dp.hpp"
#include "retask/io/cli_options.hpp"
#include "retask/power/polynomial_power.hpp"

namespace retask {
namespace {

TEST(TaskIo, ParsesFrameTasksWithHeaderAndComments) {
  std::istringstream in(
      "# a comment\n"
      "id,cycles,penalty\n"
      "0,40,0.5\n"
      "\n"
      "1, 35 , 1.25\n"
      "# trailing comment\n");
  const FrameTaskSet tasks = read_frame_tasks(in);
  ASSERT_EQ(tasks.size(), 2u);
  EXPECT_EQ(tasks[0].cycles, 40);
  EXPECT_DOUBLE_EQ(tasks[1].penalty, 1.25);
}

TEST(TaskIo, ParsesFrameTasksWithoutHeader) {
  std::istringstream in("0,40,0.5\n1,35,1.0\n");
  EXPECT_EQ(read_frame_tasks(in).size(), 2u);
}

TEST(TaskIo, ReportsLineNumbersOnErrors) {
  std::istringstream bad_fields("0,40,0.5\n1,35\n");
  try {
    read_frame_tasks(bad_fields);
    FAIL() << "expected error";
  } catch (const Error& error) {
    EXPECT_NE(std::string(error.what()).find("line 2"), std::string::npos);
  }

  std::istringstream bad_number("0,forty,0.5\n");
  EXPECT_THROW(read_frame_tasks(bad_number), Error);
  std::istringstream bad_penalty("0,40,cheap\n");
  EXPECT_THROW(read_frame_tasks(bad_penalty), Error);
}

TEST(TaskIo, TypoedIdOnFirstRowIsAnErrorNotAHeader) {
  // "x1,40,0.5" has numeric cycles/penalty fields: it is a garbled data row,
  // not a header, and silently dropping it would shrink the instance.
  std::istringstream in("x1,40,0.5\n1,35,1.0\n");
  try {
    read_frame_tasks(in);
    FAIL() << "expected error";
  } catch (const Error& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("line 1"), std::string::npos) << what;
    EXPECT_NE(what.find("x1"), std::string::npos) << what;
  }
  // A genuine header (no numeric field at all) is still skipped.
  std::istringstream header("id,cycles,penalty\n0,40,0.5\n");
  EXPECT_EQ(read_frame_tasks(header).size(), 1u);
}

TEST(TaskIo, RejectsNonPositiveCyclesWithLineNumber) {
  std::istringstream negative("0,40,0.5\n1,-5,1.0\n");
  try {
    read_frame_tasks(negative);
    FAIL() << "expected error";
  } catch (const Error& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("line 2"), std::string::npos) << what;
    EXPECT_NE(what.find("cycles"), std::string::npos) << what;
  }
  std::istringstream zero("0,0,0.5\n");
  EXPECT_THROW(read_frame_tasks(zero), Error);
}

TEST(TaskIo, RejectsNegativeOrNonFinitePenalty) {
  std::istringstream negative("0,40,-1.0\n");
  EXPECT_THROW(read_frame_tasks(negative), Error);
  std::istringstream infinite("0,40,inf\n");
  EXPECT_THROW(read_frame_tasks(infinite), Error);
  std::istringstream not_a_number("0,40,nan\n");
  EXPECT_THROW(read_frame_tasks(not_a_number), Error);
  std::istringstream overflow("0,40,1e999\n");
  EXPECT_THROW(read_frame_tasks(overflow), Error);
}

TEST(TaskIo, RejectsNonPositivePeriodicFields) {
  std::istringstream zero_period("0,20,0,5\n");
  EXPECT_THROW(read_periodic_tasks(zero_period), Error);
  std::istringstream negative_period("0,20,-100,5\n");
  EXPECT_THROW(read_periodic_tasks(negative_period), Error);
  std::istringstream negative_cycles("0,-20,100,5\n");
  EXPECT_THROW(read_periodic_tasks(negative_cycles), Error);
  std::istringstream negative_penalty("0,20,100,-5\n");
  try {
    read_periodic_tasks(negative_penalty);
    FAIL() << "expected error";
  } catch (const Error& error) {
    EXPECT_NE(std::string(error.what()).find("line 1"), std::string::npos);
  }
}

TEST(TaskIo, ParsesPeriodicTasks) {
  std::istringstream in("id,cycles,period,penalty\n0,20,100,5\n1,30,200,2.5\n");
  const PeriodicTaskSet tasks = read_periodic_tasks(in);
  ASSERT_EQ(tasks.size(), 2u);
  EXPECT_EQ(tasks[1].period, 200);
  EXPECT_EQ(tasks.hyper_period(), 200);
}

TEST(TaskIo, FrameRoundTripIsExact) {
  const FrameTaskSet original({{3, 40, 0.5}, {7, 35, 1.25}});
  std::stringstream buffer;
  write_frame_tasks(buffer, original);
  const FrameTaskSet parsed = read_frame_tasks(buffer);
  ASSERT_EQ(parsed.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(parsed[i].id, original[i].id);
    EXPECT_EQ(parsed[i].cycles, original[i].cycles);
    EXPECT_DOUBLE_EQ(parsed[i].penalty, original[i].penalty);
  }
}

TEST(TaskIo, PeriodicRoundTripIsExact) {
  const PeriodicTaskSet original({{0, 20, 100, 5.0}, {1, 30, 400, 2.5}});
  std::stringstream buffer;
  write_periodic_tasks(buffer, original);
  const PeriodicTaskSet parsed = read_periodic_tasks(buffer);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[1].period, 400);
}

TEST(TaskIo, MissingFileThrows) {
  EXPECT_THROW(read_frame_tasks_file("/nonexistent/tasks.csv"), Error);
}

TEST(TaskIo, SolutionCsvListsEveryTask) {
  const FrameTaskSet tasks({{0, 60, 1.0}, {1, 60, 0.1}});
  EnergyCurve curve(PolynomialPowerModel::xscale(), 1.0, IdleDiscipline::kDormantEnable);
  const RejectionProblem problem(tasks, std::move(curve), 0.01, 1);
  const RejectionSolution solution = ExactDpSolver().solve(problem);
  std::ostringstream out;
  write_solution_csv(out, problem, solution);
  const std::string text = out.str();
  EXPECT_NE(text.find("id,cycles,penalty,decision,processor"), std::string::npos);
  EXPECT_NE(text.find("accept"), std::string::npos);
  EXPECT_NE(text.find("reject"), std::string::npos);
}

TEST(TaskIo, FuzzedInputNeverCrashes) {
  // Random byte soup must either parse or throw retask::Error — anything
  // else (crash, other exception type) fails the test.
  Rng rng(0xF00D);
  const char alphabet[] = "0123456789,.-#ea \t\"x\n";
  for (int round = 0; round < 300; ++round) {
    std::string soup;
    const auto length = static_cast<std::size_t>(rng.uniform_int(0, 200));
    for (std::size_t i = 0; i < length; ++i) {
      soup += alphabet[rng.uniform_int(0, static_cast<std::int64_t>(sizeof(alphabet)) - 2)];
    }
    std::istringstream frame_in(soup);
    try {
      read_frame_tasks(frame_in);
    } catch (const Error&) {
      // expected for malformed input
    }
    std::istringstream periodic_in(soup);
    try {
      read_periodic_tasks(periodic_in);
    } catch (const Error&) {
    }
  }
}

// ---------------------------------------------------------------------------
// CLI options.

TEST(CliOptions, ParsesFullCommandLine) {
  const CliOptions options = parse_cli_options(
      {"--input", "tasks.csv", "--mode", "periodic", "--solver", "fptas:0.1", "--processors",
       "4", "--model", "table5", "--idle", "disable", "--frame", "2.5", "--capacity", "500",
       "--esw", "0.05", "--tsw", "0.1", "--csv"});
  EXPECT_EQ(options.mode, CliOptions::Mode::kPeriodic);
  EXPECT_EQ(options.input_path, "tasks.csv");
  EXPECT_EQ(options.solver, "fptas:0.1");
  EXPECT_EQ(options.processors, 4);
  EXPECT_EQ(options.model, "table5");
  EXPECT_EQ(options.idle, IdleDiscipline::kDormantDisable);
  EXPECT_DOUBLE_EQ(options.frame, 2.5);
  EXPECT_DOUBLE_EQ(options.capacity, 500);
  EXPECT_DOUBLE_EQ(options.sleep.switch_energy, 0.05);
  EXPECT_DOUBLE_EQ(options.sleep.switch_time, 0.1);
  EXPECT_TRUE(options.csv);
}

TEST(CliOptions, DefaultsAreSane) {
  const CliOptions options = parse_cli_options({"--input", "x.csv"});
  EXPECT_EQ(options.mode, CliOptions::Mode::kFrame);
  EXPECT_EQ(options.solver, "opt-dp");
  EXPECT_EQ(options.processors, 1);
  EXPECT_TRUE(options.sleep.free());
  EXPECT_FALSE(options.csv);
}

TEST(CliOptions, HelpSkipsRequiredChecks) {
  const CliOptions options = parse_cli_options({"--help"});
  EXPECT_TRUE(options.help);
  EXPECT_FALSE(cli_usage().empty());
}

TEST(CliOptions, RejectsBadInput) {
  EXPECT_THROW(parse_cli_options({}), Error);                                // no input
  EXPECT_THROW(parse_cli_options({"--input"}), Error);                       // missing value
  EXPECT_THROW(parse_cli_options({"--input", "x", "--mode", "bogus"}), Error);
  EXPECT_THROW(parse_cli_options({"--input", "x", "--processors", "0"}), Error);
  EXPECT_THROW(parse_cli_options({"--input", "x", "--frame", "-1"}), Error);
  EXPECT_THROW(parse_cli_options({"--input", "x", "--esw", "-2"}), Error);
  EXPECT_THROW(parse_cli_options({"--input", "x", "--model", "tpu"}), Error);
  EXPECT_THROW(parse_cli_options({"--wat"}), Error);
}

TEST(CliOptions, RejectsNonFiniteAndOverflowingNumbers) {
  // strtod happily returns inf for "1e999" and accepts "inf"/"nan" spellings;
  // every numeric flag must insist on a finite value.
  EXPECT_THROW(parse_cli_options({"--input", "x", "--capacity", "1e999"}), Error);
  EXPECT_THROW(parse_cli_options({"--input", "x", "--capacity", "inf"}), Error);
  EXPECT_THROW(parse_cli_options({"--input", "x", "--capacity", "nan"}), Error);
  EXPECT_THROW(parse_cli_options({"--input", "x", "--frame", "infinity"}), Error);
  EXPECT_THROW(parse_cli_options({"--input", "x", "--esw", "nan"}), Error);
  EXPECT_THROW(parse_cli_options({"--input", "x", "--processors", "99999999999999999999"}),
               Error);
  // Sane spellings keep working.
  EXPECT_DOUBLE_EQ(parse_cli_options({"--input", "x", "--capacity", "1e3"}).capacity, 1000.0);
}

TEST(CliOptions, ModelFactory) {
  EXPECT_TRUE(make_model_by_name("xscale")->is_continuous());
  EXPECT_TRUE(make_model_by_name("cubic")->is_continuous());
  EXPECT_FALSE(make_model_by_name("table5")->is_continuous());
  EXPECT_THROW(make_model_by_name("nope"), Error);
}

}  // namespace
}  // namespace retask
