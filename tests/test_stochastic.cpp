// Statistical property tests for the stochastic execution-time engine:
// distribution support/means, bit-for-bit degeneration to sched/reclaim,
// the policy energy ordering on matched seeds (clairvoyant <= lookahead <=
// cycle-conserving <= greedy <= static expected energy), zero deadline
// misses across 1k random trajectories (continuous and ladder execution),
// and jobs-invariance of the sweep harness.
#include "retask/sched/stochastic.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "retask/common/error.hpp"
#include "retask/exp/stochastic_sweep.hpp"
#include "retask/power/polynomial_power.hpp"
#include "retask/sched/reclaim.hpp"
#include "test_util.hpp"

namespace retask {
namespace {

EnergyCurve curve() {
  return EnergyCurve(PolynomialPowerModel::xscale(), 1.0, IdleDiscipline::kDormantEnable);
}

TrajectoryDistribution uniform_dist(double lo, double hi) {
  TrajectoryDistribution dist;
  dist.kind = CycleDistribution::kUniform;
  dist.ratio_lo = lo;
  dist.ratio_hi = hi;
  return dist;
}

StochasticFrameResult run_policy(const std::vector<FrameTask>& tasks,
                                 const std::vector<Cycles>& actual, double kappa,
                                 const EnergyCurve& c, StochasticPolicy policy,
                                 const FreqLadder* ladder = nullptr,
                                 double expected_ratio = 1.0) {
  StochasticFrameConfig config;
  config.policy = policy;
  config.ladder = ladder;
  config.expected_ratio = expected_ratio;
  return simulate_frame_stochastic(tasks, actual, kappa, c, config);
}

TEST(Stochastic, ValidatesInputs) {
  const std::vector<FrameTask> tasks{{0, 50, 1.0}};
  const EnergyCurve c = curve();
  EXPECT_THROW(run_policy(tasks, {60}, 0.01, c, StochasticPolicy::kStatic), Error);
  EXPECT_THROW(run_policy(tasks, {}, 0.01, c, StochasticPolicy::kStatic), Error);
  EXPECT_THROW(run_policy(tasks, {50}, 0.0, c, StochasticPolicy::kStatic), Error);
  EXPECT_THROW(run_policy(tasks, {50}, 0.01, c, StochasticPolicy::kExpected, nullptr, 0.0),
               Error);
  EXPECT_THROW(run_policy(tasks, {50}, 0.01, c, StochasticPolicy::kExpected, nullptr, 1.5),
               Error);
  // A ladder too slow for the WCET load is rejected up front.
  const FreqLadder slow({{0.2, 0.1}});
  EXPECT_THROW(run_policy(tasks, {50}, 0.01, c, StochasticPolicy::kStatic, &slow), Error);

  TrajectoryDistribution bad = uniform_dist(0.0, 0.5);
  Rng rng(1);
  EXPECT_THROW(draw_trajectory(tasks, bad, rng), Error);
  bad = uniform_dist(0.8, 0.2);
  EXPECT_THROW(draw_trajectory(tasks, bad, rng), Error);
}

TEST(Stochastic, DistributionsRespectSupportAndMeans) {
  const std::vector<FrameTask> tasks{{0, 1000, 1.0}};
  std::vector<TrajectoryDistribution> dists;
  dists.push_back(uniform_dist(0.2, 0.8));
  TrajectoryDistribution normal;
  normal.kind = CycleDistribution::kTruncNormal;
  normal.ratio_lo = 0.2;
  normal.ratio_hi = 0.8;
  normal.mean = 0.45;
  normal.stddev = 0.15;
  dists.push_back(normal);
  TrajectoryDistribution bimodal;
  bimodal.kind = CycleDistribution::kBimodal;
  bimodal.ratio_lo = 0.2;
  bimodal.ratio_hi = 0.8;
  bimodal.low_weight = 0.7;
  bimodal.mode_width = 0.2;
  dists.push_back(bimodal);

  for (const TrajectoryDistribution& dist : dists) {
    SCOPED_TRACE(to_string(dist.kind));
    Rng rng(11);
    double sum = 0.0;
    constexpr int kDraws = 20000;
    for (int i = 0; i < kDraws; ++i) {
      const std::vector<Cycles> actual = draw_trajectory(tasks, dist, rng);
      ASSERT_GE(actual[0], static_cast<Cycles>(1000.0 * dist.ratio_lo) - 1);
      ASSERT_LE(actual[0], static_cast<Cycles>(1000.0 * dist.ratio_hi) + 1);
      sum += static_cast<double>(actual[0]) / 1000.0;
    }
    // Empirical mean within 2% of the analytic mean_ratio.
    EXPECT_NEAR(sum / kDraws, dist.mean_ratio(), 0.02 * dist.mean_ratio());
  }
}

TEST(Stochastic, UniformTrajectoryMatchesDrawActualCycles) {
  const RejectionProblem instance = test::small_instance(7, 10, 0.9);
  const std::vector<FrameTask>& tasks = instance.tasks().tasks();
  Rng a(123);
  Rng b(123);
  const std::vector<Cycles> via_engine = draw_trajectory(tasks, uniform_dist(0.3, 0.9), a);
  const std::vector<Cycles> via_reclaim = draw_actual_cycles(tasks, 0.3, 0.9, b);
  EXPECT_EQ(via_engine, via_reclaim);
}

// Degenerate distribution (ACET == WCET) — and in fact ANY actual-cycle
// vector — reproduces the existing reclaim results bit for bit on the
// continuous path for the three shared policies.
TEST(Stochastic, ContinuousPathReproducesReclaimBitForBit) {
  const EnergyCurve c = curve();
  Rng rng(5);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const RejectionProblem instance = test::small_instance(seed, 8, 0.9);
    const std::vector<FrameTask>& tasks = instance.tasks().tasks();
    const double kappa = instance.work_per_cycle();

    // Degenerate: the point-mass distribution at ratio 1 draws WCET cycles.
    Rng point_rng(seed);
    const std::vector<Cycles> degenerate =
        draw_trajectory(tasks, uniform_dist(1.0, 1.0), point_rng);
    for (std::size_t i = 0; i < tasks.size(); ++i) EXPECT_EQ(degenerate[i], tasks[i].cycles);

    const std::vector<Cycles> random = draw_actual_cycles(tasks, 0.25, 0.95, rng);
    for (const std::vector<Cycles>& actual : {degenerate, random}) {
      const struct {
        StochasticPolicy mine;
        ReclaimPolicy theirs;
      } pairs[] = {
          {StochasticPolicy::kStatic, ReclaimPolicy::kStatic},
          {StochasticPolicy::kGreedy, ReclaimPolicy::kGreedy},
          {StochasticPolicy::kClairvoyant, ReclaimPolicy::kClairvoyant},
      };
      for (const auto& pair : pairs) {
        SCOPED_TRACE(to_string(pair.mine));
        const StochasticFrameResult mine = run_policy(tasks, actual, kappa, c, pair.mine);
        const ReclaimResult theirs =
            simulate_frame_reclaim(tasks, actual, kappa, c, pair.theirs);
        // Exact double equality on purpose: the engine promises bit-identity
        // with sched/reclaim on the continuous path.
        EXPECT_EQ(mine.energy, theirs.energy);
        EXPECT_EQ(mine.completion, theirs.completion);
        EXPECT_EQ(mine.initial_speed, theirs.initial_speed);
        EXPECT_EQ(mine.final_speed, theirs.final_speed);
        EXPECT_EQ(mine.deadline_met, theirs.deadline_met);
      }
    }
  }
}

TEST(Stochastic, ExpectedRatioOneReproducesGreedy) {
  const EnergyCurve c = curve();
  Rng rng(17);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const RejectionProblem instance = test::small_instance(seed, 8, 0.9);
    const std::vector<FrameTask>& tasks = instance.tasks().tasks();
    const std::vector<Cycles> actual = draw_actual_cycles(tasks, 0.3, 0.9, rng);
    const double kappa = instance.work_per_cycle();
    const StochasticFrameResult expected =
        run_policy(tasks, actual, kappa, c, StochasticPolicy::kExpected, nullptr, 1.0);
    const StochasticFrameResult greedy =
        run_policy(tasks, actual, kappa, c, StochasticPolicy::kGreedy);
    // Pacing for 100% of the remaining WCET IS the greedy reclaimer.
    EXPECT_EQ(expected.energy, greedy.energy);
    EXPECT_EQ(expected.completion, greedy.completion);
  }
}

// The acceptance-criterion property: over >= 1000 matched-seed trajectories
// at WCET/ACET ratio 2 (uniform ratios around mean 0.5), expected energies
// order clairvoyant <= lookahead <= cycle-conserving <= greedy <= static,
// every policy meets every deadline, and the clairvoyant bound holds per
// trajectory. Both execution backends (continuous, 5-level ladder) are
// zero-miss; the ordering chain is asserted on the continuous means.
TEST(Stochastic, PolicyOrderingOnMatchedSeedsAndZeroMisses) {
  const EnergyCurve c = curve();
  const FreqLadder ladder = FreqLadder::from_model(PolynomialPowerModel::xscale(), 5);
  const TrajectoryDistribution dist = uniform_dist(0.25, 0.75);  // mean ACET = WCET / 2

  constexpr int kInstances = 25;
  constexpr int kTrajectories = 40;  // 25 x 40 = 1000 matched trajectories
  const std::vector<StochasticPolicy> lineup = all_stochastic_policies();

  std::vector<double> total(lineup.size(), 0.0);
  std::vector<double> ladder_total(lineup.size(), 0.0);
  int trajectories = 0;

  for (std::uint64_t k = 0; k < kInstances; ++k) {
    const RejectionProblem instance = test::small_instance(k + 1, 8, 0.9);
    const std::vector<FrameTask>& tasks = instance.tasks().tasks();
    const double kappa = instance.work_per_cycle();
    Rng rng(Rng::stream_seed(42, k));
    for (int r = 0; r < kTrajectories; ++r) {
      const std::vector<Cycles> actual = draw_trajectory(tasks, dist, rng);
      ++trajectories;
      for (std::size_t p = 0; p < lineup.size(); ++p) {
        SCOPED_TRACE(to_string(lineup[p]));
        const StochasticFrameResult run =
            run_policy(tasks, actual, kappa, c, lineup[p], nullptr, dist.mean_ratio());
        ASSERT_TRUE(run.deadline_met) << "instance " << k << " trajectory " << r;
        total[p] += run.energy;

        const StochasticFrameResult quantized =
            run_policy(tasks, actual, kappa, c, lineup[p], &ladder, dist.mean_ratio());
        ASSERT_TRUE(quantized.deadline_met) << "instance " << k << " trajectory " << r;
        ladder_total[p] += quantized.energy;
      }
    }
  }
  ASSERT_EQ(trajectories, kInstances * kTrajectories);

  const auto mean_of = [&](StochasticPolicy policy, const std::vector<double>& sums) {
    for (std::size_t p = 0; p < lineup.size(); ++p) {
      if (lineup[p] == policy) return sums[p] / trajectories;
    }
    ADD_FAILURE() << "policy missing from lineup";
    return 0.0;
  };

  const double e_static = mean_of(StochasticPolicy::kStatic, total);
  const double e_greedy = mean_of(StochasticPolicy::kGreedy, total);
  const double e_cc = mean_of(StochasticPolicy::kCycleConserving, total);
  const double e_la = mean_of(StochasticPolicy::kLookahead, total);
  const double e_exp = mean_of(StochasticPolicy::kExpected, total);
  const double e_cv = mean_of(StochasticPolicy::kClairvoyant, total);

  // The deferral spectrum, on expected energy over matched seeds.
  EXPECT_LE(e_cv, e_la + 1e-9);
  EXPECT_LE(e_la, e_cc + 1e-9);
  EXPECT_LE(e_cc, e_greedy + 1e-9);
  EXPECT_LE(e_greedy, e_static + 1e-9);
  // Expected-work pacing knows the true mean ratio, so it may undercut even
  // the lookahead reclaimer; only the clairvoyant bound and plain reclaim
  // bracket it.
  EXPECT_LE(e_cv, e_exp + 1e-9);
  EXPECT_LE(e_exp, e_greedy + 1e-9);
  // The acceptance criterion is strict: CC-EDF and LA-EDF beat kStatic.
  EXPECT_LT(e_cc, e_static * 0.99);
  EXPECT_LT(e_la, e_static * 0.99);

  // Quantization never breaks the continuous clairvoyant lower bound (the
  // ladder's levels lie on the model curve). It can, however, undercut the
  // matching continuous policy: low-level-first emulation truncates the
  // expensive high-speed share on early completion, which acts as free
  // reclamation for the plan-executing policies — so no ladder-vs-continuous
  // per-policy ordering is asserted.
  for (std::size_t p = 0; p < lineup.size(); ++p) {
    EXPECT_GE(ladder_total[p] / trajectories, e_cv - 1e-9) << to_string(lineup[p]);
  }
}

TEST(Stochastic, ClairvoyantIsPerTrajectoryLowerBound) {
  const EnergyCurve c = curve();
  const TrajectoryDistribution dist = uniform_dist(0.2, 0.9);
  for (std::uint64_t k = 0; k < 10; ++k) {
    const RejectionProblem instance = test::small_instance(k + 1, 6, 0.85);
    const std::vector<FrameTask>& tasks = instance.tasks().tasks();
    const double kappa = instance.work_per_cycle();
    Rng rng(Rng::stream_seed(7, k));
    for (int r = 0; r < 20; ++r) {
      const std::vector<Cycles> actual = draw_trajectory(tasks, dist, rng);
      const double bound =
          run_policy(tasks, actual, kappa, c, StochasticPolicy::kClairvoyant).energy;
      for (StochasticPolicy policy : all_stochastic_policies()) {
        const StochasticFrameResult run =
            run_policy(tasks, actual, kappa, c, policy, nullptr, dist.mean_ratio());
        EXPECT_GE(run.energy, bound - 1e-9) << to_string(policy);
      }
    }
  }
}

TEST(Stochastic, DegenerateLadderTrajectoryDominatesContinuous) {
  // At ACET == WCET every policy executes its full plan, so two-speed
  // emulation on curve-sampled levels (chord >= curve) can only cost more.
  const EnergyCurve c = curve();
  const FreqLadder ladder = FreqLadder::from_model(PolynomialPowerModel::xscale(), 5);
  for (std::uint64_t k = 1; k <= 10; ++k) {
    const RejectionProblem instance = test::small_instance(k, 8, 0.9);
    const std::vector<FrameTask>& tasks = instance.tasks().tasks();
    const double kappa = instance.work_per_cycle();
    std::vector<Cycles> wcet;
    for (const FrameTask& task : tasks) wcet.push_back(task.cycles);
    for (StochasticPolicy policy : all_stochastic_policies()) {
      const double continuous = run_policy(tasks, wcet, kappa, c, policy).energy;
      const double quantized = run_policy(tasks, wcet, kappa, c, policy, &ladder).energy;
      EXPECT_GE(quantized, continuous - 1e-9) << to_string(policy) << " seed " << k;
    }
  }
}

TEST(Stochastic, EmptyAcceptSetIdles) {
  const StochasticFrameResult r =
      run_policy({}, {}, 0.01, curve(), StochasticPolicy::kLookahead);
  EXPECT_TRUE(r.deadline_met);
  EXPECT_NEAR(r.energy, 0.0, 1e-12);
}

// Determinism regression (same shape as test_parallel's harness check): the
// stochastic sweep aggregates are bit-identical at jobs=1 and jobs=8.
TEST(Stochastic, SweepBitIdenticalForOneVsEightJobs) {
  StochasticSweepConfig config;
  config.scenario.task_count = 10;
  config.scenario.load = 1.2;  // forces rejections, so the rate is non-trivial
  config.scenario.resolution = 400.0;
  config.distribution = uniform_dist(0.25, 0.75);
  config.ladder_levels = 5;
  config.instances = 32;
  config.trajectories = 8;
  config.seed0 = 1;
  config.trajectory_seed = 99;
  const PolynomialPowerModel model = PolynomialPowerModel::xscale();

  const StochasticSweepResult sequential = run_stochastic_sweep(config, model, /*jobs=*/1);
  const StochasticSweepResult parallel = run_stochastic_sweep(config, model, /*jobs=*/8);

  const auto expect_identical = [](const OnlineStats& lhs, const OnlineStats& rhs) {
    ASSERT_EQ(lhs.count(), rhs.count());
    // Exact double equality on purpose: per-instance trajectory streams are
    // derived from (trajectory_seed, instance) and slots reduce in instance
    // order, so job count cannot change any bit.
    EXPECT_EQ(lhs.mean(), rhs.mean());
    EXPECT_EQ(lhs.min(), rhs.min());
    EXPECT_EQ(lhs.max(), rhs.max());
    EXPECT_EQ(lhs.variance(), rhs.variance());
  };
  expect_identical(sequential.rejection_rate, parallel.rejection_rate);
  expect_identical(sequential.acceptance, parallel.acceptance);
  ASSERT_EQ(sequential.policies.size(), parallel.policies.size());
  for (std::size_t p = 0; p < sequential.policies.size(); ++p) {
    SCOPED_TRACE(to_string(sequential.policies[p].policy));
    EXPECT_EQ(sequential.policies[p].policy, parallel.policies[p].policy);
    EXPECT_EQ(sequential.policies[p].deadline_misses, parallel.policies[p].deadline_misses);
    EXPECT_EQ(sequential.policies[p].trajectories, parallel.policies[p].trajectories);
    expect_identical(sequential.policies[p].energy, parallel.policies[p].energy);
    expect_identical(sequential.policies[p].ratio_to_clairvoyant,
                     parallel.policies[p].ratio_to_clairvoyant);
    expect_identical(sequential.policies[p].completion, parallel.policies[p].completion);
  }
  // Sanity on the point itself: no policy missed a deadline, and the
  // clairvoyant ratio is >= 1 for every policy.
  for (const StochasticPolicyStats& stats : sequential.policies) {
    EXPECT_EQ(stats.deadline_misses, 0) << to_string(stats.policy);
    EXPECT_GE(stats.ratio_to_clairvoyant.min(), 1.0 - 1e-9) << to_string(stats.policy);
  }
}

TEST(Stochastic, ParseDistributionRoundTrip) {
  const TrajectoryDistribution uniform = parse_distribution("uniform:0.2,0.8");
  EXPECT_EQ(uniform.kind, CycleDistribution::kUniform);
  EXPECT_DOUBLE_EQ(uniform.ratio_lo, 0.2);
  EXPECT_DOUBLE_EQ(uniform.ratio_hi, 0.8);
  const TrajectoryDistribution normal = parse_distribution("normal:0.4,0.8");
  EXPECT_EQ(normal.kind, CycleDistribution::kTruncNormal);
  EXPECT_DOUBLE_EQ(normal.mean, 0.6);
  EXPECT_DOUBLE_EQ(normal.stddev, 0.1);
  const TrajectoryDistribution bimodal = parse_distribution("bimodal");
  EXPECT_EQ(bimodal.kind, CycleDistribution::kBimodal);
  EXPECT_THROW(parse_distribution("pareto:0.1,0.5"), Error);
  EXPECT_THROW(parse_distribution("uniform:0.5"), Error);
  EXPECT_THROW(parse_distribution("uniform:a,b"), Error);
  EXPECT_THROW(parse_distribution("uniform:0.9,0.1"), Error);
}

}  // namespace
}  // namespace retask
