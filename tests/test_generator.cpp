// Tests for the synthetic workload generators: UUniFast correctness, cycle
// budgets, penalty models, determinism.
#include "retask/task/generator.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "retask/common/error.hpp"

namespace retask {
namespace {

TEST(UUniFast, SharesSumToTotalAndAreNonNegative) {
  Rng rng(1);
  for (const int count : {1, 2, 5, 20}) {
    const auto shares = uunifast(count, 3.0, rng);
    ASSERT_EQ(shares.size(), static_cast<std::size_t>(count));
    double sum = 0.0;
    for (const double s : shares) {
      EXPECT_GE(s, 0.0);
      sum += s;
    }
    EXPECT_NEAR(sum, 3.0, 1e-9);
  }
}

TEST(UUniFast, RejectsBadArguments) {
  Rng rng(1);
  EXPECT_THROW(uunifast(0, 1.0, rng), Error);
  EXPECT_THROW(uunifast(3, -1.0, rng), Error);
}

TEST(UUniFast, MeanShareIsTotalOverCount) {
  Rng rng(2);
  double sum_first = 0.0;
  const int reps = 2000;
  for (int r = 0; r < reps; ++r) {
    const auto shares = uunifast(4, 1.0, rng);
    sum_first += shares[0];
  }
  EXPECT_NEAR(sum_first / reps, 0.25, 0.02);
}

TEST(FrameGenerator, HitsTargetLoadApproximately) {
  FrameWorkloadConfig config;
  config.task_count = 12;
  config.target_load = 1.5;
  config.resolution = 10000.0;
  Rng rng(3);
  const FrameTaskSet set = generate_frame_tasks(config, rng);
  ASSERT_EQ(set.size(), 12u);
  const double achieved = static_cast<double>(set.total_cycles()) / config.resolution;
  EXPECT_NEAR(achieved, 1.5, 0.01);  // rounding slack only
}

TEST(FrameGenerator, EveryTaskHasPositiveCyclesAndPenalty) {
  FrameWorkloadConfig config;
  config.task_count = 30;
  config.target_load = 0.8;
  config.cycle_spread = 32.0;
  Rng rng(4);
  const FrameTaskSet set = generate_frame_tasks(config, rng);
  for (const FrameTask& t : set.tasks()) {
    EXPECT_GT(t.cycles, 0);
    EXPECT_GT(t.penalty, 0.0);
  }
}

TEST(FrameGenerator, DeterministicForFixedSeed) {
  FrameWorkloadConfig config;
  Rng rng1(99);
  Rng rng2(99);
  const FrameTaskSet a = generate_frame_tasks(config, rng1);
  const FrameTaskSet b = generate_frame_tasks(config, rng2);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].cycles, b[i].cycles);
    EXPECT_DOUBLE_EQ(a[i].penalty, b[i].penalty);
  }
}

TEST(FrameGenerator, PenaltyScaleIsLinear) {
  FrameWorkloadConfig lo;
  lo.penalty_scale = 1.0;
  FrameWorkloadConfig hi = lo;
  hi.penalty_scale = 10.0;
  Rng rng1(7);
  Rng rng2(7);
  const FrameTaskSet a = generate_frame_tasks(lo, rng1);
  const FrameTaskSet b = generate_frame_tasks(hi, rng2);
  EXPECT_NEAR(b.total_penalty() / a.total_penalty(), 10.0, 1e-9);
}

TEST(FrameGenerator, ProportionalPenaltiesTrackCycles) {
  FrameWorkloadConfig config;
  config.task_count = 40;
  config.penalty_model = PenaltyModel::kProportionalCycles;
  Rng rng(8);
  const FrameTaskSet set = generate_frame_tasks(config, rng);
  // Penalty per cycle must sit within the generator's jitter band [0.8, 1.25]
  // times a common constant for every task.
  double min_density = 1e300;
  double max_density = 0.0;
  for (const FrameTask& t : set.tasks()) {
    const double d = t.penalty / static_cast<double>(t.cycles);
    min_density = std::min(min_density, d);
    max_density = std::max(max_density, d);
  }
  EXPECT_LE(max_density / min_density, 1.26 / 0.79);
}

TEST(FrameGenerator, InversePenaltiesFavorSmallTasks) {
  FrameWorkloadConfig config;
  config.task_count = 40;
  config.cycle_spread = 64.0;
  config.penalty_model = PenaltyModel::kInverseCycles;
  Rng rng(9);
  const FrameTaskSet set = generate_frame_tasks(config, rng);
  const FrameTask* smallest = &set[0];
  const FrameTask* largest = &set[0];
  for (const FrameTask& t : set.tasks()) {
    if (t.cycles < smallest->cycles) smallest = &t;
    if (t.cycles > largest->cycles) largest = &t;
  }
  EXPECT_GT(smallest->penalty, largest->penalty);
}

TEST(FrameGenerator, RejectsBadConfig) {
  Rng rng(1);
  FrameWorkloadConfig bad;
  bad.task_count = 0;
  EXPECT_THROW(generate_frame_tasks(bad, rng), Error);
  bad = FrameWorkloadConfig{};
  bad.target_load = 0.0;
  EXPECT_THROW(generate_frame_tasks(bad, rng), Error);
  bad = FrameWorkloadConfig{};
  bad.cycle_spread = 0.5;
  EXPECT_THROW(generate_frame_tasks(bad, rng), Error);
  bad = FrameWorkloadConfig{};
  bad.task_count = 100;
  bad.resolution = 10.0;  // coarser than the task count
  EXPECT_THROW(generate_frame_tasks(bad, rng), Error);
}

TEST(PeriodicGenerator, RespectsRateAndMenu) {
  PeriodicWorkloadConfig config;
  config.task_count = 10;
  config.total_rate = 0.8;
  Rng rng(10);
  const PeriodicTaskSet set = generate_periodic_tasks(config, rng);
  ASSERT_EQ(set.size(), 10u);
  // Rounding to integer cycles moves each task rate by < 1/period.
  EXPECT_NEAR(set.total_rate(), 0.8, 10.0 / 100.0);
  for (const PeriodicTask& t : set.tasks()) {
    bool in_menu = false;
    for (const std::int64_t p : config.period_menu) in_menu = in_menu || (p == t.period);
    EXPECT_TRUE(in_menu);
    EXPECT_GT(t.cycles, 0);
  }
}

TEST(PeriodicGenerator, HyperPeriodBoundedByMenuLcm) {
  PeriodicWorkloadConfig config;
  config.task_count = 25;
  Rng rng(11);
  const PeriodicTaskSet set = generate_periodic_tasks(config, rng);
  EXPECT_LE(set.hyper_period(), 2000);
}

TEST(PeriodicGenerator, RejectsBadConfig) {
  Rng rng(1);
  PeriodicWorkloadConfig bad;
  bad.period_menu.clear();
  EXPECT_THROW(generate_periodic_tasks(bad, rng), Error);
  bad = PeriodicWorkloadConfig{};
  bad.total_rate = 0.0;
  EXPECT_THROW(generate_periodic_tasks(bad, rng), Error);
}

}  // namespace
}  // namespace retask
