// Tests for the energy curve E(W): closed forms, both idle disciplines,
// discrete-speed hull behaviour, execution-plan consistency, and
// parameterized property sweeps (convexity, monotonicity) across models.
#include "retask/power/energy_curve.hpp"

#include <cmath>
#include <limits>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "retask/common/error.hpp"
#include "retask/power/critical_speed.hpp"
#include "retask/power/polynomial_power.hpp"
#include "retask/power/table_power.hpp"

namespace retask {
namespace {

TEST(EnergyCurve, RejectsNonPositiveWindow) {
  const PolynomialPowerModel m = PolynomialPowerModel::cubic();
  EXPECT_THROW(EnergyCurve(m, 0.0, IdleDiscipline::kDormantEnable), Error);
}

TEST(EnergyCurve, FeasibilityCapIsTopSpeedTimesWindow) {
  const PolynomialPowerModel m = PolynomialPowerModel::cubic();
  const EnergyCurve curve(m, 2.0, IdleDiscipline::kDormantEnable);
  EXPECT_DOUBLE_EQ(curve.max_workload(), 2.0);
  EXPECT_TRUE(curve.feasible(2.0));
  EXPECT_TRUE(curve.feasible(0.0));
  EXPECT_FALSE(curve.feasible(2.1));
  EXPECT_FALSE(curve.feasible(-0.1));
  EXPECT_THROW(curve.energy(2.5), Error);
}

TEST(EnergyCurve, CubicDormantEnableClosedForm) {
  // P(s) = s^3, sleep allowed: optimal speed is W/D, E = W^3 / D^2.
  const PolynomialPowerModel m = PolynomialPowerModel::cubic();
  const EnergyCurve curve(m, 1.0, IdleDiscipline::kDormantEnable);
  EXPECT_NEAR(curve.energy(0.0), 0.0, 1e-12);
  for (const double w : {0.1, 0.25, 0.5, 0.75, 1.0}) {
    EXPECT_NEAR(curve.energy(w), w * w * w, 1e-6) << "W = " << w;
  }
}

TEST(EnergyCurve, CubicScalesWithWindow) {
  const PolynomialPowerModel m = PolynomialPowerModel::cubic();
  const EnergyCurve curve(m, 4.0, IdleDiscipline::kDormantEnable);
  // E = W^3 / D^2.
  EXPECT_NEAR(curve.energy(2.0), 8.0 / 16.0, 1e-6);
}

TEST(EnergyCurve, XscaleEnableUsesCriticalSpeedWhenLight) {
  const PolynomialPowerModel m = PolynomialPowerModel::xscale();
  const EnergyCurve curve(m, 1.0, IdleDiscipline::kDormantEnable);
  const double s_crit = m.analytic_critical_speed();
  const double light = 0.5 * s_crit;  // below the critical rate
  EXPECT_NEAR(curve.energy(light), light * m.energy_per_cycle(s_crit), 1e-6);
  // Above the critical rate the processor stretches work over the window.
  const double heavy = 0.8;
  EXPECT_NEAR(curve.energy(heavy), m.power(heavy) * 1.0, 1e-6);
}

TEST(EnergyCurve, XscaleDisablePaysLeakageForWholeWindow) {
  const PolynomialPowerModel m = PolynomialPowerModel::xscale();
  const EnergyCurve curve(m, 1.0, IdleDiscipline::kDormantDisable);
  // E(W) = beta1 * D + beta2 * W^3 / D^2 (dynamic part runs at W/D).
  EXPECT_NEAR(curve.energy(0.0), 0.08, 1e-12);
  for (const double w : {0.2, 0.5, 0.9}) {
    EXPECT_NEAR(curve.energy(w), 0.08 + 1.52 * w * w * w, 1e-6) << "W = " << w;
  }
}

TEST(EnergyCurve, DisableNeverCheaperThanEnable) {
  const PolynomialPowerModel m = PolynomialPowerModel::xscale();
  const EnergyCurve enable(m, 1.0, IdleDiscipline::kDormantEnable);
  const EnergyCurve disable(m, 1.0, IdleDiscipline::kDormantDisable);
  for (double w = 0.0; w <= 1.0; w += 0.05) {
    EXPECT_LE(enable.energy(w), disable.energy(w) + 1e-9) << "W = " << w;
  }
}

TEST(EnergyCurve, DiscreteHullInterpolatesBetweenSpeeds) {
  const TablePowerModel m = TablePowerModel::xscale5();
  const EnergyCurve curve(m, 1.0, IdleDiscipline::kDormantEnable);
  // The 0.15 point lies above the (0,0)-(0.4,P(0.4)) hull segment, so the
  // energy at rate 0.2 is linear interpolation toward (0.4, P(0.4)).
  const double p04 = 0.08 + 1.52 * 0.4 * 0.4 * 0.4;
  EXPECT_NEAR(curve.energy(0.2), 0.5 * p04, 1e-9);
  // At an exact hull speed the energy is the table power times the window.
  EXPECT_NEAR(curve.energy(0.4), p04, 1e-9);
  EXPECT_NEAR(curve.energy(1.0), 1.6, 1e-9);
}

TEST(EnergyCurve, DiscreteNeverBeatsIdealContinuous) {
  const PolynomialPowerModel ideal = PolynomialPowerModel::xscale();
  const TablePowerModel table = TablePowerModel::xscale5();
  const EnergyCurve ic(ideal, 1.0, IdleDiscipline::kDormantEnable);
  const EnergyCurve tc(table, 1.0, IdleDiscipline::kDormantEnable);
  for (double w = 0.0; w <= 1.0; w += 0.04) {
    EXPECT_LE(ic.energy(w), tc.energy(w) + 1e-9) << "W = " << w;
  }
}

TEST(EnergyCurve, FinerSpeedTablesApproachTheIdealCurve) {
  const PolynomialPowerModel ideal = PolynomialPowerModel::xscale();
  const EnergyCurve ic(ideal, 1.0, IdleDiscipline::kDormantEnable);
  double coarse_gap = 0.0;
  double fine_gap = 0.0;
  const TablePowerModel coarse = TablePowerModel::sampled(0.08, 1.52, 3.0, 0.25, 1.0, 2);
  const TablePowerModel fine = TablePowerModel::sampled(0.08, 1.52, 3.0, 0.25, 1.0, 16);
  const EnergyCurve cc(coarse, 1.0, IdleDiscipline::kDormantEnable);
  const EnergyCurve fc(fine, 1.0, IdleDiscipline::kDormantEnable);
  for (double w = 0.05; w <= 1.0; w += 0.05) {
    coarse_gap += cc.energy(w) - ic.energy(w);
    fine_gap += fc.energy(w) - ic.energy(w);
  }
  EXPECT_GE(coarse_gap, fine_gap);
  EXPECT_GE(fine_gap, -1e-9);
}

TEST(EnergyCurve, MarginalIsNonNegativeAndNonDecreasing) {
  const PolynomialPowerModel m = PolynomialPowerModel::xscale();
  const EnergyCurve curve(m, 1.0, IdleDiscipline::kDormantEnable);
  double prev = -1.0;
  for (double w = 0.02; w <= 0.98; w += 0.04) {
    const double g = curve.marginal(w);
    EXPECT_GE(g, -1e-9);
    EXPECT_GE(g, prev - 1e-6) << "marginal decreased at W = " << w;
    prev = g;
  }
}

TEST(EnergyCurve, CopySemantics) {
  const PolynomialPowerModel m = PolynomialPowerModel::xscale();
  const EnergyCurve a(m, 1.0, IdleDiscipline::kDormantEnable);
  const EnergyCurve b = a;  // copy
  EXPECT_NEAR(a.energy(0.5), b.energy(0.5), 1e-15);
  EnergyCurve c(PolynomialPowerModel::cubic(), 2.0, IdleDiscipline::kDormantDisable);
  c = a;  // copy assign
  EXPECT_NEAR(c.energy(0.5), a.energy(0.5), 1e-15);
  EXPECT_EQ(c.window(), 1.0);
}

// ---------------------------------------------------------------------------
// Parameterized property sweep over models and disciplines.

struct CurveCase {
  const char* label;
  std::shared_ptr<const PowerModel> model;
  IdleDiscipline idle;
  double window;
};

class EnergyCurveProperty : public ::testing::TestWithParam<CurveCase> {};

TEST_P(EnergyCurveProperty, MonotoneIncreasing) {
  const CurveCase& c = GetParam();
  const EnergyCurve curve(*c.model, c.window, c.idle);
  double prev = curve.energy(0.0);
  for (int k = 1; k <= 40; ++k) {
    const double w = curve.max_workload() * static_cast<double>(k) / 40.0;
    const double e = curve.energy(w);
    EXPECT_GE(e, prev - 1e-9) << c.label << " at W = " << w;
    prev = e;
  }
}

TEST_P(EnergyCurveProperty, Convex) {
  const CurveCase& c = GetParam();
  const EnergyCurve curve(*c.model, c.window, c.idle);
  const double cap = curve.max_workload();
  for (int i = 0; i <= 20; ++i) {
    for (int j = i; j <= 20; ++j) {
      const double a = cap * static_cast<double>(i) / 20.0;
      const double b = cap * static_cast<double>(j) / 20.0;
      const double mid = 0.5 * (a + b);
      EXPECT_LE(curve.energy(mid), 0.5 * (curve.energy(a) + curve.energy(b)) + 1e-7)
          << c.label << " convexity violated at (" << a << ", " << b << ")";
    }
  }
}

TEST_P(EnergyCurveProperty, PlanReproducesWorkWindowAndEnergy) {
  const CurveCase& c = GetParam();
  const EnergyCurve curve(*c.model, c.window, c.idle);
  for (int k = 0; k <= 20; ++k) {
    const double w = curve.max_workload() * static_cast<double>(k) / 20.0;
    const ExecutionPlan plan = curve.plan(w);
    EXPECT_NEAR(plan.total_cycles(), w, 1e-6 * std::max(1.0, w)) << c.label;
    EXPECT_NEAR(plan.total_time(), c.window, 1e-6 * c.window) << c.label;
    EXPECT_NEAR(curve.plan_energy(plan), curve.energy(w),
                1e-4 * std::max(1.0, curve.energy(w)))
        << c.label << " at W = " << w;
  }
}

TEST_P(EnergyCurveProperty, ExecutionSpeedsStayInRange) {
  const CurveCase& c = GetParam();
  const EnergyCurve curve(*c.model, c.window, c.idle);
  for (int k = 1; k <= 10; ++k) {
    const double w = curve.max_workload() * static_cast<double>(k) / 10.0;
    for (const PlanSegment& seg : curve.plan(w).segments) {
      if (seg.speed > 0.0) {
        EXPECT_LE(seg.speed, c.model->max_speed() * (1.0 + 1e-9)) << c.label;
        EXPECT_GE(seg.speed, c.model->min_speed() - 1e-9) << c.label;
      }
    }
  }
}

TEST_P(EnergyCurveProperty, ConvexFloorMinorizesEnergyAndIsConvex) {
  const CurveCase& c = GetParam();
  // Free sleep / dormant-disable: the curve is convex and the floor IS the
  // curve, bit for bit. Switch overheads: the floor must stay below E
  // everywhere and keep non-decreasing chord slopes (the convexity the
  // multiprocessor lower bound's Jensen step relies on).
  for (const SleepParams sleep : {SleepParams{}, SleepParams{0.12, 0.07}}) {
    const EnergyCurve curve(*c.model, c.window, c.idle, sleep);
    const int grid = 160;
    std::vector<double> floor_at(grid + 1);
    double prev_slope = -std::numeric_limits<double>::infinity();
    for (int k = 0; k <= grid; ++k) {
      const double w = curve.max_workload() * static_cast<double>(k) / grid;
      floor_at[k] = curve.convex_floor(w);
      EXPECT_LE(floor_at[k], curve.energy(w) + 1e-12) << c.label << " w " << w;
      if (curve.convex()) {
        EXPECT_EQ(floor_at[k], curve.energy(w)) << c.label << " w " << w;
      }
      if (k > 0) {
        const double slope = floor_at[k] - floor_at[k - 1];
        EXPECT_GE(slope, prev_slope - 1e-9 * std::max(1.0, std::fabs(slope)))
            << c.label << " k " << k;
        prev_slope = slope;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    ModelsAndDisciplines, EnergyCurveProperty,
    ::testing::Values(
        CurveCase{"cubic-enable",
                  std::make_shared<PolynomialPowerModel>(PolynomialPowerModel::cubic()),
                  IdleDiscipline::kDormantEnable, 1.0},
        CurveCase{"cubic-disable",
                  std::make_shared<PolynomialPowerModel>(PolynomialPowerModel::cubic()),
                  IdleDiscipline::kDormantDisable, 1.0},
        CurveCase{"xscale-enable",
                  std::make_shared<PolynomialPowerModel>(PolynomialPowerModel::xscale()),
                  IdleDiscipline::kDormantEnable, 1.0},
        CurveCase{"xscale-disable",
                  std::make_shared<PolynomialPowerModel>(PolynomialPowerModel::xscale()),
                  IdleDiscipline::kDormantDisable, 2.5},
        CurveCase{"xscale-minspeed",
                  std::make_shared<PolynomialPowerModel>(0.08, 1.52, 3.0, 0.2, 1.0),
                  IdleDiscipline::kDormantEnable, 1.0},
        CurveCase{"quadratic-enable",
                  std::make_shared<PolynomialPowerModel>(0.05, 1.0, 2.0, 0.0, 1.0),
                  IdleDiscipline::kDormantEnable, 1.0},
        CurveCase{"table5-enable",
                  std::make_shared<TablePowerModel>(TablePowerModel::xscale5()),
                  IdleDiscipline::kDormantEnable, 1.0},
        CurveCase{"table5-disable",
                  std::make_shared<TablePowerModel>(TablePowerModel::xscale5()),
                  IdleDiscipline::kDormantDisable, 1.0},
        CurveCase{"table2-enable",
                  std::make_shared<TablePowerModel>(
                      TablePowerModel::sampled(0.08, 1.52, 3.0, 0.5, 1.0, 2)),
                  IdleDiscipline::kDormantEnable, 3.0}),
    [](const ::testing::TestParamInfo<CurveCase>& param_info) {
      std::string label = param_info.param.label;
      for (char& ch : label) {
        if (ch == '-') ch = '_';
      }
      return label;
    });

}  // namespace
}  // namespace retask
