// Shared helpers for solver tests: small random instances with exact-DP
// friendly cycle resolutions.
#ifndef RETASK_TESTS_TEST_UTIL_HPP
#define RETASK_TESTS_TEST_UTIL_HPP

#include "retask/exp/workload.hpp"
#include "retask/power/polynomial_power.hpp"

namespace retask {
namespace test {

/// A small instance on the XScale model (dormant-enable) with coarse cycles
/// so exact DP and exhaustive search stay fast.
inline RejectionProblem small_instance(std::uint64_t seed, int task_count = 10,
                                       double load = 1.4, double penalty_scale = 1.0,
                                       int processors = 1,
                                       IdleDiscipline idle = IdleDiscipline::kDormantEnable) {
  ScenarioConfig config;
  config.task_count = task_count;
  config.load = load;
  config.resolution = 400.0;
  config.penalty_scale = penalty_scale;
  config.idle = idle;
  config.processor_count = processors;
  config.seed = seed;
  const PolynomialPowerModel model = PolynomialPowerModel::xscale();
  return make_scenario(config, model);
}

}  // namespace test
}  // namespace retask

#endif  // RETASK_TESTS_TEST_UTIL_HPP
