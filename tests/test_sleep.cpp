// Tests for dormant-mode overheads: break-even analysis and the sleep-aware
// energy curve (branch structure, boundary behaviour, plan consistency).
#include "retask/power/sleep.hpp"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "retask/common/error.hpp"
#include "retask/power/energy_curve.hpp"
#include "retask/power/polynomial_power.hpp"
#include "retask/power/table_power.hpp"

namespace retask {
namespace {

TEST(SleepParams, ValidationAndFreeCheck) {
  EXPECT_NO_THROW(validate(SleepParams{0.0, 0.0}));
  EXPECT_NO_THROW(validate(SleepParams{0.1, 2.0}));
  EXPECT_THROW(validate(SleepParams{-0.1, 0.0}), Error);
  EXPECT_THROW(validate(SleepParams{0.0, -1.0}), Error);
  EXPECT_TRUE(SleepParams{}.free());
  EXPECT_FALSE((SleepParams{0.0, 1.0}.free()));
}

TEST(IdleIntervalEnergy, PicksCheaperOfAwakeAndSleep) {
  const SleepParams sleep{0.2, 1.0};
  // Short interval (< tsw): must stay awake.
  EXPECT_DOUBLE_EQ(idle_interval_energy(2.0, sleep, 0.1), 0.2);
  // Long interval: sleeping (1.0) beats leaking (2.0 * 3.0).
  EXPECT_DOUBLE_EQ(idle_interval_energy(2.0, sleep, 3.0), 1.0);
  // Long interval but cheap leakage: staying awake wins.
  EXPECT_DOUBLE_EQ(idle_interval_energy(0.1, sleep, 3.0), 0.3);
  EXPECT_DOUBLE_EQ(idle_interval_energy(1.0, SleepParams{}, 5.0), 0.0);  // free sleep
  EXPECT_THROW(idle_interval_energy(1.0, sleep, -1.0), Error);
}

TEST(BreakEven, MatchesDefinition) {
  const PolynomialPowerModel m = PolynomialPowerModel::xscale();  // Pind = 0.08
  EXPECT_DOUBLE_EQ(break_even_time(m, SleepParams{}), 0.0);
  // Esw / Pind = 0.4 / 0.08 = 5 dominates tsw = 1.
  EXPECT_NEAR(break_even_time(m, SleepParams{1.0, 0.4}), 5.0, 1e-12);
  // tsw dominates when Esw is tiny.
  EXPECT_NEAR(break_even_time(m, SleepParams{2.0, 0.01}), 2.0, 1e-12);
}

TEST(BreakEven, InfiniteWithoutLeakageToSave) {
  const PolynomialPowerModel m = PolynomialPowerModel::cubic();  // Pind = 0
  EXPECT_TRUE(std::isinf(break_even_time(m, SleepParams{0.1, 1.0})));
  EXPECT_DOUBLE_EQ(break_even_time(m, SleepParams{0.1, 0.0}), 0.1);
}

// ---------------------------------------------------------------------------
// Sleep-aware energy curve.

TEST(SleepCurve, FreeSleepMatchesDefaultCurve) {
  const PolynomialPowerModel m = PolynomialPowerModel::xscale();
  const EnergyCurve plain(m, 1.0, IdleDiscipline::kDormantEnable);
  const EnergyCurve with_sleep(m, 1.0, IdleDiscipline::kDormantEnable, SleepParams{0.0, 0.0});
  for (double w = 0.0; w <= 1.0; w += 0.05) {
    EXPECT_NEAR(plain.energy(w), with_sleep.energy(w), 1e-12) << "W = " << w;
  }
}

TEST(SleepCurve, SwitchEnergyAddsJumpAtZeroPlus) {
  const PolynomialPowerModel m = PolynomialPowerModel::xscale();
  const SleepParams sleep{0.0, 0.05};
  const EnergyCurve curve(m, 1.0, IdleDiscipline::kDormantEnable, sleep);
  EXPECT_DOUBLE_EQ(curve.energy(0.0), 0.0);  // stays dormant
  // A tiny workload wakes the processor: it pays execution at the critical
  // speed plus min(leakage of the tail, Esw) — bounded below by ~Esw here.
  const double tiny = 1e-3;
  EXPECT_GT(curve.energy(tiny), 0.04);
  // The free-sleep curve has no such jump.
  const EnergyCurve free_curve(m, 1.0, IdleDiscipline::kDormantEnable);
  EXPECT_LT(free_curve.energy(tiny), 0.001);
}

TEST(SleepCurve, ChoosesAwakeTailWhenSwitchTooExpensive) {
  const PolynomialPowerModel m = PolynomialPowerModel::xscale();  // Pind = 0.08
  // Esw larger than a full window of leakage: sleeping never pays.
  const SleepParams sleep{0.0, 1.0};
  const EnergyCurve curve(m, 1.0, IdleDiscipline::kDormantEnable, sleep);
  const EnergyCurve disable(m, 1.0, IdleDiscipline::kDormantDisable);
  // With sleeping useless, the enable curve must match dormant-disable for
  // positive workloads (same awake-idle accounting)...
  for (double w = 0.1; w <= 1.0; w += 0.1) {
    EXPECT_NEAR(curve.energy(w), disable.energy(w), 1e-9) << "W = " << w;
  }
  // ...but not at zero, where staying dormant is free.
  EXPECT_DOUBLE_EQ(curve.energy(0.0), 0.0);
}

TEST(SleepCurve, SwitchTimeRestrictsSleepableTails) {
  const PolynomialPowerModel m = PolynomialPowerModel::xscale();
  // Free switch energy but a switch that takes 0.5 time units: workloads
  // whose optimal tail is shorter than 0.5 cannot sleep.
  const SleepParams sleep{0.5, 0.0};
  const EnergyCurve curve(m, 1.0, IdleDiscipline::kDormantEnable, sleep);
  const EnergyCurve free_curve(m, 1.0, IdleDiscipline::kDormantEnable);
  // Light load (W = 0.1): the critical-speed plan leaves a 0.66 tail, well
  // past tsw, so the curve matches free sleeping.
  EXPECT_NEAR(curve.energy(0.1), free_curve.energy(0.1), 1e-9);
  // Heavy load (W = 0.9): the free curve runs at 0.9 with a 0.1 tail; with
  // tsw = 0.5 that tail cannot sleep, so the best sleeping plan runs at
  // least at W / (D - tsw) = 1.8 > smax — impossible — and the curve must
  // pay awake leakage instead: strictly more energy.
  EXPECT_GT(curve.energy(0.9), free_curve.energy(0.9));
  // It must equal the better of "run at 0.9, leak through 0.1" and the
  // boundary-speed sleeping plan (infeasible here).
  const double awake = m.power(0.9) * (0.9 / 0.9) + 0.08 * (1.0 - 0.9 / 0.9);
  EXPECT_NEAR(curve.energy(0.9), awake, 1e-9);
}

TEST(SleepCurve, MonotoneEvenWithOverheads) {
  const PolynomialPowerModel m = PolynomialPowerModel::xscale();
  const EnergyCurve curve(m, 1.0, IdleDiscipline::kDormantEnable, SleepParams{0.1, 0.05});
  double prev = curve.energy(0.0);
  for (int k = 1; k <= 50; ++k) {
    const double w = static_cast<double>(k) / 50.0;
    const double e = curve.energy(w);
    EXPECT_GE(e, prev - 1e-9) << "W = " << w;
    prev = e;
  }
}

TEST(SleepCurve, PlanEnergyConsistentWithOverheads) {
  const PolynomialPowerModel ideal = PolynomialPowerModel::xscale();
  const TablePowerModel table = TablePowerModel::xscale5();
  for (const PowerModel* model : {static_cast<const PowerModel*>(&ideal),
                                  static_cast<const PowerModel*>(&table)}) {
    const EnergyCurve curve(*model, 1.0, IdleDiscipline::kDormantEnable,
                            SleepParams{0.1, 0.05});
    // k starts at 1: E(0) uses the stay-dormant convention (no sleep/wake
    // pair), while an explicit all-idle plan is charged as one slept-through
    // interval — see the plan_energy contract.
    for (int k = 1; k <= 20; ++k) {
      const double w = curve.max_workload() * static_cast<double>(k) / 20.0;
      const ExecutionPlan plan = curve.plan(w);
      EXPECT_NEAR(plan.total_cycles(), w, 1e-6 * std::max(1.0, w)) << model->name();
      EXPECT_NEAR(plan.total_time(), 1.0, 1e-6) << model->name();
      EXPECT_NEAR(curve.plan_energy(plan), curve.energy(w),
                  1e-4 * std::max(1.0, curve.energy(w)))
          << model->name() << " at W = " << w;
    }
  }
}

TEST(SleepCurve, DiscreteSleepBoundaryCandidate) {
  // Table processor, tsw forcing the sleep boundary strictly between hull
  // vertices: the curve must still find the exact optimum (the boundary
  // speed candidate).
  const TablePowerModel table = TablePowerModel::xscale5();
  const SleepParams sleep{0.3, 0.01};
  const EnergyCurve curve(table, 1.0, IdleDiscipline::kDormantEnable, sleep);
  // Brute-force the decision over a dense grid of average speeds.
  const double w = 0.5;
  double brute = std::numeric_limits<double>::infinity();
  for (int i = 0; i <= 100000; ++i) {
    const double s = 0.15 + (1.0 - 0.15) * static_cast<double>(i) / 100000.0;
    if (s < w) continue;  // busy would exceed the window
    const double busy = w / s;
    const double idle = 1.0 - busy;
    // hull interpolation equals table interpolation here (all points on hull)
    double p = 0.0;
    const double speeds[] = {0.15, 0.4, 0.6, 0.8, 1.0};
    for (int seg = 0; seg < 4; ++seg) {
      if (s >= speeds[seg] && s <= speeds[seg + 1]) {
        const double theta = (speeds[seg + 1] - s) / (speeds[seg + 1] - speeds[seg]);
        const auto pw = [](double v) { return 0.08 + 1.52 * v * v * v; };
        p = theta * pw(speeds[seg]) + (1.0 - theta) * pw(speeds[seg + 1]);
        break;
      }
    }
    const double awake = busy * p + 0.08 * idle;
    const double asleep = idle >= sleep.switch_time
                              ? busy * p + sleep.switch_energy
                              : std::numeric_limits<double>::infinity();
    brute = std::min({brute, awake, asleep});
  }
  EXPECT_NEAR(curve.energy(w), brute, 1e-5);
}

}  // namespace
}  // namespace retask
