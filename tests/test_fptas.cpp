// Tests for the FPTAS: the (1+eps) guarantee against the exact DP across a
// parameterized epsilon/load sweep, plus behavioural edge cases.
#include "retask/core/fptas.hpp"

#include <algorithm>

#include <gtest/gtest.h>

#include "retask/common/error.hpp"
#include "retask/core/exact_dp.hpp"
#include "test_util.hpp"

namespace retask {
namespace {

TEST(Fptas, RejectsNonPositiveEpsilon) {
  EXPECT_THROW(FptasSolver(0.0), Error);
  EXPECT_THROW(FptasSolver(-0.5), Error);
}

TEST(Fptas, NameIncludesEpsilon) {
  EXPECT_EQ(FptasSolver(0.25).name(), "FPTAS(0.25)");
}

TEST(Fptas, ExactOnTrivialInstances) {
  // All penalties zero: optimal objective is 0 (reject all); the FPTAS must
  // find exactly that despite the relative guarantee being vacuous at 0.
  const FrameTaskSet tasks({{0, 50, 0.0}, {1, 60, 0.0}});
  EnergyCurve curve(PolynomialPowerModel::xscale(), 1.0, IdleDiscipline::kDormantEnable);
  const RejectionProblem p(tasks, std::move(curve), 0.01, 1);
  const RejectionSolution s = FptasSolver(0.5).solve(p);
  EXPECT_NEAR(s.objective(), 0.0, 1e-9);
}

TEST(Fptas, GuardsMultiprocessorInstances) {
  const RejectionProblem p = test::small_instance(1, 8, 1.0, 1.0, 2);
  EXPECT_THROW(FptasSolver(0.1).solve(p), Error);
}

struct FptasCase {
  double epsilon;
  double load;
  double penalty_scale;
};

class FptasGuarantee : public ::testing::TestWithParam<FptasCase> {};

TEST_P(FptasGuarantee, WithinOnePlusEpsilonOfOptimal) {
  const FptasCase& c = GetParam();
  const ExactDpSolver dp;
  const FptasSolver fptas(c.epsilon);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const RejectionProblem p = test::small_instance(seed, 12, c.load, c.penalty_scale);
    const double opt = dp.solve(p).objective();
    const double approx = fptas.solve(p).objective();
    EXPECT_GE(approx, opt - 1e-9) << "FPTAS beat the optimum (impossible)";
    EXPECT_LE(approx, opt * (1.0 + c.epsilon) + 1e-9)
        << "seed " << seed << " eps " << c.epsilon << " load " << c.load;
  }
}

INSTANTIATE_TEST_SUITE_P(EpsilonSweep, FptasGuarantee,
                         ::testing::Values(FptasCase{1.0, 1.5, 1.0},
                                           FptasCase{0.5, 1.5, 1.0},
                                           FptasCase{0.2, 1.5, 1.0},
                                           FptasCase{0.1, 1.5, 1.0},
                                           FptasCase{0.05, 1.5, 1.0},
                                           FptasCase{0.1, 0.7, 1.0},
                                           FptasCase{0.1, 2.5, 1.0},
                                           FptasCase{0.1, 1.5, 0.2},
                                           FptasCase{0.1, 1.5, 4.0}));

TEST(Fptas, TightEpsilonConvergesToOptimalObjective) {
  const ExactDpSolver dp;
  const RejectionProblem p = test::small_instance(3, 12, 1.8, 1.2);
  const double opt = dp.solve(p).objective();
  double prev_gap = 1e300;
  for (const double eps : {1.0, 0.3, 0.1, 0.03}) {
    const double approx = FptasSolver(eps).solve(p).objective();
    const double gap = approx - opt;
    EXPECT_LE(gap, prev_gap + 1e-9);  // gap shrinks (weakly) with epsilon
    prev_gap = std::max(gap, 0.0);
  }
  EXPECT_LE(prev_gap, 0.03 * opt + 1e-9);
}

}  // namespace
}  // namespace retask
