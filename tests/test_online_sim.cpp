// Tests for the online admission simulator: OA speed behaviour, admission
// rules, the zero-miss invariant across random streams, and energy
// accounting.
#include "retask/sched/online_sim.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "retask/common/error.hpp"
#include "retask/power/critical_speed.hpp"
#include "retask/power/polynomial_power.hpp"

namespace retask {
namespace {

const PolynomialPowerModel& xscale() {
  static const PolynomialPowerModel model = PolynomialPowerModel::xscale();
  return model;
}

TEST(OnlineSim, ValidatesJobsAndConfig) {
  OnlineSimConfig config;
  EXPECT_THROW(simulate_online({{0, 0.0, 0, 1.0, 0.0}}, config, xscale()), Error);
  EXPECT_THROW(simulate_online({{0, 2.0, 10, 1.0, 0.0}}, config, xscale()), Error);
  config.work_per_cycle = 0.0;
  EXPECT_THROW(simulate_online({}, config, xscale()), Error);
}

TEST(OnlineSim, EmptyStreamIdlesOverHorizon) {
  OnlineSimConfig config;
  config.horizon = 10.0;
  config.dormant_enable = false;  // leak to make the idle energy visible
  const OnlineSimResult r = simulate_online({}, config, xscale());
  EXPECT_DOUBLE_EQ(r.idle_time, 10.0);
  EXPECT_NEAR(r.energy, 10.0 * 0.08, 1e-12);
  EXPECT_DOUBLE_EQ(r.admission_ratio(), 1.0);
}

TEST(OnlineSim, SingleJobRunsAtDensityOrCriticalSpeed) {
  OnlineSimConfig config;
  // Job: 0.3 work due in 1.0 -> density 0.3 > critical speed (~0.297):
  // runs at 0.3 for 1.0 time units.
  const std::vector<AperiodicJob> jobs{{0, 0.0, 300, 1.0, 10.0}};
  config.work_per_cycle = 0.001;
  const OnlineSimResult r = simulate_online(jobs, config, xscale());
  EXPECT_EQ(r.admitted, 1);
  EXPECT_EQ(r.deadline_misses, 0);
  EXPECT_NEAR(r.max_speed_used, 0.3, 1e-9);
  EXPECT_NEAR(r.busy_time, 1.0, 1e-9);
  // A lazier deadline: density below critical speed; the processor sprints
  // at s_crit and sleeps.
  const std::vector<AperiodicJob> lazy{{0, 0.0, 100, 2.0, 10.0}};
  const OnlineSimResult r2 = simulate_online(lazy, config, xscale());
  EXPECT_NEAR(r2.max_speed_used, critical_speed(xscale()), 1e-6);
  EXPECT_EQ(r2.deadline_misses, 0);
}

TEST(OnlineSim, InfeasibleArrivalIsRejected) {
  OnlineSimConfig config;
  config.work_per_cycle = 0.001;
  // First job saturates the processor until t=1 (density 1.0); the second
  // wants 0.5 work by t=1 on top of that: impossible.
  const std::vector<AperiodicJob> jobs{{0, 0.0, 1000, 1.0, 5.0}, {1, 0.1, 500, 1.0, 3.0}};
  const OnlineSimResult r = simulate_online(jobs, config, xscale());
  EXPECT_EQ(r.admitted, 1);
  EXPECT_EQ(r.deadline_misses, 0);
  EXPECT_DOUBLE_EQ(r.rejected_penalty, 3.0);
}

TEST(OnlineSim, ValueDensityRuleFiltersCheapJobs) {
  OnlineSimConfig config;
  config.work_per_cycle = 0.001;
  config.rule = AdmissionRule::kValueDensity;
  config.value_threshold = 1.0;
  // Two identical feasible jobs; one with a penalty far below its energy,
  // one far above.
  const std::vector<AperiodicJob> jobs{{0, 0.0, 300, 1.0, 0.001}, {1, 2.0, 300, 3.0, 10.0}};
  const OnlineSimResult r = simulate_online(jobs, config, xscale());
  EXPECT_EQ(r.admitted, 1);
  EXPECT_DOUBLE_EQ(r.rejected_penalty, 0.001);
}

TEST(OnlineSim, EnergyMatchesHandComputation) {
  OnlineSimConfig config;
  config.work_per_cycle = 0.001;
  config.horizon = 2.0;
  const std::vector<AperiodicJob> jobs{{0, 0.0, 500, 1.0, 10.0}};  // density 0.5
  const OnlineSimResult r = simulate_online(jobs, config, xscale());
  // Runs at 0.5 for 1.0, sleeps 1.0 (dormant-enable, free).
  EXPECT_NEAR(r.energy, xscale().power(0.5) * 1.0, 1e-9);
  EXPECT_NEAR(r.idle_time, 1.0, 1e-9);
}

TEST(OnlineSim, PreemptionByTighterJobIsHandled) {
  OnlineSimConfig config;
  config.work_per_cycle = 0.001;
  // Long lax job, then a tight job arriving mid-flight with an earlier
  // deadline: EDF must switch to it and both must finish on time.
  const std::vector<AperiodicJob> jobs{{0, 0.0, 400, 4.0, 10.0}, {1, 1.0, 300, 1.5, 10.0}};
  const OnlineSimResult r = simulate_online(jobs, config, xscale());
  EXPECT_EQ(r.admitted, 2);
  EXPECT_EQ(r.deadline_misses, 0);
  // The tight phase needs at least 0.3/0.5 = 0.6 speed.
  EXPECT_GE(r.max_speed_used, 0.6 - 1e-9);
}

TEST(OnlineSim, TightSlackAdmissionSurvivesFloatDrift) {
  // The admission test is tolerant (leq_tol, rel 1e-9) while execution is
  // clamped to smax*(1+1e-12): a job admitted at density smax*(1+5e-10)
  // falls behind by ~5e-10 work. When another job arrives exactly at its
  // deadline, the scheduler re-enters with zero slack; this used to trip
  // RETASK_ASSERT(oa < kInf) and abort the whole simulation. The drift
  // residue must instead be forgiven (not a miss) and the doomed job
  // dropped.
  OnlineSimConfig config;
  config.work_per_cycle = 1e-10;
  const std::vector<AperiodicJob> jobs{
      {0, 0.0, 10000000005LL, 1.0, 5.0},  // work 1.0000000005: inside tolerance
      {1, 1.0, 1000000000LL, 2.0, 3.0},   // arrives exactly at job 0's deadline
  };
  OnlineSimResult r;
  ASSERT_NO_THROW(r = simulate_online(jobs, config, xscale()));
  EXPECT_EQ(r.admitted, 1);
  EXPECT_EQ(r.deadline_misses, 0);  // residue ~5e-10 work is drift, not a miss
  EXPECT_DOUBLE_EQ(r.rejected_penalty, 3.0);
  EXPECT_LE(r.max_speed_used, 1.0 + 1e-9);
}

TEST(OnlineSim, ZeroMissInvariantAcrossRandomStreams) {
  // The checked invariant behind the admission test: whatever the load,
  // admitted jobs never miss.
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    AperiodicWorkloadConfig gen;
    gen.duration = 60.0;
    gen.arrival_rate = 0.3 + 0.15 * static_cast<double>(seed);  // up to heavy overload
    gen.mean_work = 0.5;
    Rng rng(seed);
    const std::vector<AperiodicJob> jobs = generate_aperiodic_jobs(gen, 1.0, rng);
    OnlineSimConfig config;
    config.work_per_cycle = 1.0 / gen.resolution;
    const OnlineSimResult r = simulate_online(jobs, config, xscale());
    EXPECT_EQ(r.deadline_misses, 0) << "seed " << seed;
    EXPECT_LE(r.max_speed_used, 1.0 + 1e-9) << "seed " << seed;
  }
}

TEST(OnlineSim, HigherLoadLowersAdmissionRatio) {
  double prev_ratio = 1.1;
  for (const double rate : {0.5, 1.5, 3.0}) {
    double admitted = 0.0;
    double total = 0.0;
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
      AperiodicWorkloadConfig gen;
      gen.duration = 50.0;
      gen.arrival_rate = rate;
      gen.mean_work = 0.5;
      Rng rng(seed * 7 + 1);
      const auto jobs = generate_aperiodic_jobs(gen, 1.0, rng);
      OnlineSimConfig config;
      config.work_per_cycle = 1.0 / gen.resolution;
      const OnlineSimResult r = simulate_online(jobs, config, xscale());
      admitted += static_cast<double>(r.admitted);
      total += static_cast<double>(r.jobs);
    }
    const double ratio = admitted / total;
    EXPECT_LT(ratio, prev_ratio) << "rate " << rate;
    prev_ratio = ratio;
  }
}

TEST(OnlineSim, ValueRuleBeatsFeasibleOnlyUnderOverload) {
  // Under overload with many low-value jobs, filtering by value must lower
  // the combined objective on average.
  double feasible_only = 0.0;
  double filtered = 0.0;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    AperiodicWorkloadConfig gen;
    gen.duration = 50.0;
    gen.arrival_rate = 3.0;
    gen.mean_work = 0.5;
    gen.penalty_scale = 0.3;  // jobs are mostly not worth their energy
    gen.energy_per_work_ref = xscale().energy_per_cycle(0.7);
    Rng rng(seed * 13 + 5);
    const auto jobs = generate_aperiodic_jobs(gen, 1.0, rng);
    OnlineSimConfig config;
    config.work_per_cycle = 1.0 / gen.resolution;
    config.horizon = 60.0;
    feasible_only += simulate_online(jobs, config, xscale()).objective();
    config.rule = AdmissionRule::kValueDensity;
    config.value_threshold = 1.0;
    filtered += simulate_online(jobs, config, xscale()).objective();
  }
  EXPECT_LT(filtered, feasible_only);
}

TEST(AperiodicGenerator, ProducesFeasibleSaneJobs) {
  AperiodicWorkloadConfig gen;
  gen.duration = 40.0;
  gen.arrival_rate = 2.0;
  Rng rng(3);
  const auto jobs = generate_aperiodic_jobs(gen, 1.0, rng);
  EXPECT_GT(jobs.size(), 30u);  // ~80 expected
  double prev_arrival = 0.0;
  for (const AperiodicJob& job : jobs) {
    EXPECT_GE(job.arrival, prev_arrival);
    prev_arrival = job.arrival;
    EXPECT_LT(job.arrival, 40.0);
    EXPECT_GT(job.cycles, 0);
    // Every job is feasible in isolation (deadline >= 2x top-speed time).
    const double work = static_cast<double>(job.cycles) / gen.resolution;
    EXPECT_GE(job.deadline - job.arrival, 2.0 * work - 1e-6);
    EXPECT_GT(job.penalty, 0.0);
  }
}

}  // namespace
}  // namespace retask
