// Tests for the frame simulator: finish times, deadline verdicts, and
// agreement between simulated and analytic energy.
#include "retask/sched/frame_sim.hpp"

#include <gtest/gtest.h>

#include "retask/common/error.hpp"
#include "retask/power/polynomial_power.hpp"

namespace retask {
namespace {

TEST(FrameSim, SequentialFinishTimesAtConstantSpeed) {
  const PolynomialPowerModel m = PolynomialPowerModel::cubic();
  const EnergyCurve curve(m, 1.0, IdleDiscipline::kDormantEnable);
  // Two tasks of 0.25 work units each, executed at speed 0.5 for the whole
  // frame: finishes at 0.5 and 1.0.
  SpeedSchedule schedule;
  schedule.append(0.5, 1.0);
  const std::vector<FrameTask> tasks{{0, 25, 0.0}, {1, 25, 0.0}};
  const FrameSimResult result = simulate_frame(tasks, 0.01, schedule, curve);
  EXPECT_TRUE(result.deadline_met);
  ASSERT_EQ(result.finish_times.size(), 2u);
  EXPECT_NEAR(result.finish_times[0], 0.5, 1e-9);
  EXPECT_NEAR(result.finish_times[1], 1.0, 1e-9);
  EXPECT_NEAR(result.completion_time, 1.0, 1e-9);
}

TEST(FrameSim, EnergyMatchesCurveForOptimalPlan) {
  const PolynomialPowerModel m = PolynomialPowerModel::xscale();
  const EnergyCurve curve(m, 1.0, IdleDiscipline::kDormantEnable);
  const double work = 0.6;
  const SpeedSchedule schedule = SpeedSchedule::from_plan(curve.plan(work));
  const std::vector<FrameTask> tasks{{0, 60, 0.0}};
  const FrameSimResult result = simulate_frame(tasks, 0.01, schedule, curve);
  EXPECT_TRUE(result.deadline_met);
  EXPECT_NEAR(result.energy, curve.energy(work), 1e-6);
}

TEST(FrameSim, DetectsScheduleWithTooLittleWork) {
  const PolynomialPowerModel m = PolynomialPowerModel::cubic();
  const EnergyCurve curve(m, 1.0, IdleDiscipline::kDormantEnable);
  SpeedSchedule schedule;
  schedule.append(0.5, 1.0);  // executes only 0.5 work units
  const std::vector<FrameTask> tasks{{0, 80, 0.0}};
  EXPECT_THROW(simulate_frame(tasks, 0.01, schedule, curve), Error);
}

TEST(FrameSim, RejectsScheduleShorterThanWindow) {
  const PolynomialPowerModel m = PolynomialPowerModel::cubic();
  const EnergyCurve curve(m, 2.0, IdleDiscipline::kDormantEnable);
  SpeedSchedule schedule;
  schedule.append(1.0, 1.0);  // only covers half the window
  EXPECT_THROW(simulate_frame({}, 0.01, schedule, curve), Error);
}

TEST(FrameSim, EmptyAcceptSetIsTriviallyOnTime) {
  const PolynomialPowerModel m = PolynomialPowerModel::xscale();
  const EnergyCurve curve(m, 1.0, IdleDiscipline::kDormantDisable);
  const SpeedSchedule schedule = SpeedSchedule::from_plan(curve.plan(0.0));
  const FrameSimResult result = simulate_frame({}, 0.01, schedule, curve);
  EXPECT_TRUE(result.deadline_met);
  EXPECT_NEAR(result.completion_time, 0.0, 1e-12);
  // Dormant-disable idles at leakage power for the whole window.
  EXPECT_NEAR(result.energy, 0.08, 1e-9);
}

TEST(FrameSim, LateCompletionIsFlagged) {
  const PolynomialPowerModel m = PolynomialPowerModel::cubic();
  const EnergyCurve curve(m, 1.0, IdleDiscipline::kDormantEnable);
  // Schedule longer than the window executing the work only near the end.
  SpeedSchedule schedule;
  schedule.append(0.0, 1.0);
  schedule.append(1.0, 0.5);
  const std::vector<FrameTask> tasks{{0, 40, 0.0}};
  const FrameSimResult result = simulate_frame(tasks, 0.01, schedule, curve);
  EXPECT_FALSE(result.deadline_met);
  EXPECT_GT(result.completion_time, 1.0);
}

}  // namespace
}  // namespace retask
