// Cross-module property tests: invariants that tie several subsystems
// together, parameterized across models, disciplines, overheads and loads.
#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "retask/retask.hpp"
#include "test_util.hpp"

namespace retask {
namespace {

// ---------------------------------------------------------------------------
// The exact DP stays optimal when the energy curve is NOT convex (sleep
// overheads add a jump at 0+): it never assumed convexity, only that the
// objective depends on the accept set through total cycles.

struct OverheadCase {
  double esw;
  double tsw;
  double load;
};

class DpUnderOverheads : public ::testing::TestWithParam<OverheadCase> {};

TEST_P(DpUnderOverheads, MatchesExhaustiveWithNonConvexCurves) {
  const OverheadCase& c = GetParam();
  const PolynomialPowerModel model = PolynomialPowerModel::xscale();
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    ScenarioConfig config;
    config.task_count = 9;
    config.load = c.load;
    config.resolution = 300.0;
    config.seed = seed;
    const RejectionProblem base = make_scenario(config, model);
    const RejectionProblem p(base.tasks(),
                             EnergyCurve(model, 1.0, IdleDiscipline::kDormantEnable,
                                         SleepParams{c.tsw, c.esw}),
                             base.work_per_cycle(), 1);
    const double dp = ExactDpSolver().solve(p).objective();
    const double exh = ExhaustiveSolver().solve(p).objective();
    EXPECT_NEAR(dp, exh, 1e-6 * std::max(1.0, exh))
        << "seed " << seed << " esw " << c.esw << " tsw " << c.tsw;
  }
}

INSTANTIATE_TEST_SUITE_P(Overheads, DpUnderOverheads,
                         ::testing::Values(OverheadCase{0.05, 0.0, 1.4},
                                           OverheadCase{0.2, 0.0, 1.4},
                                           OverheadCase{0.05, 0.3, 1.4},
                                           OverheadCase{0.1, 0.1, 0.7},
                                           OverheadCase{0.1, 0.1, 2.4}));

// ---------------------------------------------------------------------------
// The FPTAS guarantee needs only a monotone energy curve; verify it under
// dormant-disable and under sleep overheads.

TEST(FptasProperty, GuaranteeHoldsOnNonConvexAndDisableCurves) {
  const PolynomialPowerModel model = PolynomialPowerModel::xscale();
  const double eps = 0.1;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    ScenarioConfig config;
    config.task_count = 10;
    config.load = 1.7;
    config.resolution = 300.0;
    config.seed = seed;
    const RejectionProblem base = make_scenario(config, model);
    for (const auto& curve :
         {EnergyCurve(model, 1.0, IdleDiscipline::kDormantDisable),
          EnergyCurve(model, 1.0, IdleDiscipline::kDormantEnable, SleepParams{0.1, 0.08})}) {
      const RejectionProblem p(base.tasks(), curve, base.work_per_cycle(), 1);
      const double opt = ExactDpSolver().solve(p).objective();
      const double approx = FptasSolver(eps).solve(p).objective();
      EXPECT_LE(approx, opt * (1.0 + eps) + 1e-9) << "seed " << seed;
      EXPECT_GE(approx, opt - 1e-9) << "seed " << seed;
    }
  }
}

// ---------------------------------------------------------------------------
// Plan -> SpeedSchedule -> frame simulator agreement for every model /
// discipline / overhead combination (the full execution pipeline).

struct PipelineCurveCase {
  const char* label;
  bool discrete;
  IdleDiscipline idle;
  SleepParams sleep;
};

class ExecutionPipeline : public ::testing::TestWithParam<PipelineCurveCase> {};

TEST_P(ExecutionPipeline, SimulatedEnergyMatchesCurve) {
  const PipelineCurveCase& c = GetParam();
  const PolynomialPowerModel ideal = PolynomialPowerModel::xscale();
  const TablePowerModel table = TablePowerModel::xscale5();
  const PowerModel& model =
      c.discrete ? static_cast<const PowerModel&>(table) : static_cast<const PowerModel&>(ideal);
  const EnergyCurve curve(model, 1.0, c.idle, c.sleep);
  for (int k = 1; k <= 10; ++k) {
    const double w = curve.max_workload() * static_cast<double>(k) / 10.0;
    const SpeedSchedule schedule = SpeedSchedule::from_plan(curve.plan(w));
    const auto cycles = static_cast<Cycles>(std::llround(w * 100.0));
    if (cycles == 0) continue;
    const std::vector<FrameTask> tasks{FrameTask{0, cycles, 1.0}};
    const FrameSimResult sim = simulate_frame(tasks, w / static_cast<double>(cycles),
                                              schedule, curve);
    EXPECT_TRUE(sim.deadline_met) << c.label << " W=" << w;
    EXPECT_NEAR(sim.energy, curve.energy(w), 1e-4 * std::max(1.0, curve.energy(w)))
        << c.label << " W=" << w;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Curves, ExecutionPipeline,
    ::testing::Values(
        PipelineCurveCase{"ideal_enable", false, IdleDiscipline::kDormantEnable, {}},
        PipelineCurveCase{"ideal_disable", false, IdleDiscipline::kDormantDisable, {}},
        PipelineCurveCase{"ideal_sleepcost", false, IdleDiscipline::kDormantEnable, {0.1, 0.05}},
        PipelineCurveCase{"table_enable", true, IdleDiscipline::kDormantEnable, {}},
        PipelineCurveCase{"table_disable", true, IdleDiscipline::kDormantDisable, {}},
        PipelineCurveCase{"table_sleepcost", true, IdleDiscipline::kDormantEnable, {0.1, 0.05}}),
    [](const ::testing::TestParamInfo<PipelineCurveCase>& param_info) {
      return std::string(param_info.param.label);
    });

// ---------------------------------------------------------------------------
// Multiprocessor solutions are invariant to processor relabeling.

TEST(SymmetryProperty, RelabelingProcessorsKeepsObjective) {
  const RejectionProblem p = test::small_instance(5, 10, 2.2, 1.0, 3);
  const RejectionSolution s = MultiProcGreedySolver().solve(p);
  // Rotate processor ids 0 -> 1 -> 2 -> 0.
  std::vector<int> rotated = s.processor_of;
  for (int& proc : rotated) {
    if (proc >= 0) proc = (proc + 1) % 3;
  }
  const RejectionSolution relabeled = make_solution(p, s.accepted, rotated);
  EXPECT_NEAR(relabeled.objective(), s.objective(), 1e-12);
}

// ---------------------------------------------------------------------------
// Determinism: the whole pipeline (generator -> solver -> harness) is
// bit-stable for fixed seeds.

TEST(DeterminismProperty, HarnessRunsAreIdentical) {
  const auto factory = [](std::uint64_t seed) { return test::small_instance(seed, 9, 1.6); };
  const auto reference = [](const RejectionProblem& p) {
    return ExactDpSolver().solve(p).objective();
  };
  auto lineup_a = standard_uniproc_lineup();
  auto lineup_b = standard_uniproc_lineup();
  const auto a = run_comparison(factory, lineup_a, reference, 6, 42);
  const auto b = run_comparison(factory, lineup_b, reference, 6, 42);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].ratio.mean(), b[i].ratio.mean()) << a[i].name;
    EXPECT_DOUBLE_EQ(a[i].objective.mean(), b[i].objective.mean()) << a[i].name;
  }
}

// ---------------------------------------------------------------------------
// Monotonicity of the optimum in the instance parameters.

TEST(MonotonicityProperty, RaisingOnePenaltyNeverLowersTheObjective) {
  const RejectionProblem base = test::small_instance(7, 9, 1.8);
  const double before = ExactDpSolver().solve(base).objective();
  std::vector<FrameTask> tasks = base.tasks().tasks();
  tasks[3].penalty *= 4.0;
  const RejectionProblem bumped(FrameTaskSet(std::move(tasks)), base.curve(),
                                base.work_per_cycle(), 1);
  const double after = ExactDpSolver().solve(bumped).objective();
  EXPECT_GE(after, before - 1e-9);
}

TEST(MonotonicityProperty, WideningTheWindowNeverHurts) {
  const PolynomialPowerModel model = PolynomialPowerModel::xscale();
  const RejectionProblem base = test::small_instance(9, 9, 2.0);
  double prev = 1e300;
  for (const double window : {1.0, 1.25, 1.5, 2.0}) {
    const RejectionProblem p(base.tasks(),
                             EnergyCurve(model, window, IdleDiscipline::kDormantEnable),
                             base.work_per_cycle(), 1);
    const double objective = ExactDpSolver().solve(p).objective();
    EXPECT_LE(objective, prev + 1e-9) << "window " << window;
    prev = objective;
  }
}

TEST(MonotonicityProperty, FasterProcessorNeverHurts) {
  // Scale beta2 down (cheaper dynamic power): optimum can only improve.
  const RejectionProblem base = test::small_instance(11, 9, 1.6);
  double prev = 1e300;
  for (const double beta2 : {3.0, 1.52, 0.8, 0.4}) {
    const PolynomialPowerModel model(0.08, beta2, 3.0, 0.0, 1.0);
    const RejectionProblem p(base.tasks(),
                             EnergyCurve(model, 1.0, IdleDiscipline::kDormantEnable),
                             base.work_per_cycle(), 1);
    const double objective = ExactDpSolver().solve(p).objective();
    EXPECT_LE(objective, prev + 1e-9) << "beta2 " << beta2;
    prev = objective;
  }
}

}  // namespace
}  // namespace retask
