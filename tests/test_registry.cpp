// Tests for the algorithm registry.
#include "retask/core/algorithm_registry.hpp"

#include <gtest/gtest.h>

#include "retask/common/error.hpp"
#include "test_util.hpp"

namespace retask {
namespace {

TEST(Registry, CreatesEveryKnownSolver) {
  for (const char* name : {"opt-dp", "opt-exh", "greedy", "ls-greedy", "all-accept", "rand",
                           "mp-ltf-dp", "la-ltf-ff", "mp-greedy", "mp-rand", "mp-opt-exh"}) {
    const auto solver = make_solver(name);
    ASSERT_NE(solver, nullptr) << name;
    EXPECT_FALSE(solver->name().empty());
  }
}

TEST(Registry, ParsesFptasEpsilon) {
  const auto solver = make_solver("fptas:0.25");
  EXPECT_EQ(solver->name(), "FPTAS(0.25)");
}

TEST(Registry, RejectsUnknownNamesAndBadEpsilon) {
  EXPECT_THROW(make_solver("nope"), Error);
  EXPECT_THROW(make_solver("fptas:"), Error);
  EXPECT_THROW(make_solver("fptas:-1"), Error);
  EXPECT_THROW(make_solver("fptas:abc"), Error);
  EXPECT_THROW(make_solver("fptas:0.1x"), Error);
}

TEST(Registry, UniprocLineupSolvesInstances) {
  const RejectionProblem p = test::small_instance(1, 8, 1.5);
  for (const auto& solver : standard_uniproc_lineup()) {
    const RejectionSolution s = solver->solve(p);
    check_solution(p, s);
  }
}

TEST(Registry, MultiprocLineupSolvesInstances) {
  const RejectionProblem p = test::small_instance(1, 10, 2.0, 1.0, 2);
  for (const auto& solver : standard_multiproc_lineup()) {
    const RejectionSolution s = solver->solve(p);
    check_solution(p, s);
  }
}

}  // namespace
}  // namespace retask
