// Unit tests for the numeric toolbox (tolerant comparisons, convex
// minimization, checked integer arithmetic).
#include "retask/common/math.hpp"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "retask/common/error.hpp"

namespace retask {
namespace {

TEST(AlmostEqual, EqualValuesMatch) {
  EXPECT_TRUE(almost_equal(1.0, 1.0));
  EXPECT_TRUE(almost_equal(0.0, 0.0));
  EXPECT_TRUE(almost_equal(-5.5, -5.5));
}

TEST(AlmostEqual, RelativeToleranceScalesWithMagnitude) {
  EXPECT_TRUE(almost_equal(1e12, 1e12 * (1.0 + 1e-10)));
  EXPECT_FALSE(almost_equal(1e12, 1e12 * (1.0 + 1e-6)));
}

TEST(AlmostEqual, AbsoluteNearZero) {
  EXPECT_TRUE(almost_equal(0.0, 1e-12));
  EXPECT_FALSE(almost_equal(0.0, 1e-3));
}

TEST(AlmostEqual, NonFiniteValuesCompareExactly) {
  const double inf = std::numeric_limits<double>::infinity();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(almost_equal(inf, 1.0));
  EXPECT_FALSE(almost_equal(1.0, inf));
  EXPECT_TRUE(almost_equal(inf, inf));
  EXPECT_FALSE(almost_equal(inf, -inf));
  EXPECT_FALSE(almost_equal(nan, nan));
  EXPECT_FALSE(almost_equal(nan, 0.0));
  // leq_tol inherits the hardening: infinity is not "<=" a finite bound.
  EXPECT_FALSE(leq_tol(inf, 1.0));
  EXPECT_TRUE(leq_tol(1.0, inf));
}

TEST(LeqTol, AcceptsTightBoundaries) {
  EXPECT_TRUE(leq_tol(1.0, 1.0));
  EXPECT_TRUE(leq_tol(1.0 + 1e-12, 1.0));
  EXPECT_TRUE(leq_tol(0.5, 1.0));
  EXPECT_FALSE(leq_tol(1.1, 1.0));
}

TEST(Clamp, ClampsIntoRange) {
  EXPECT_DOUBLE_EQ(clamp(5.0, 0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(clamp(-5.0, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(clamp(0.25, 0.0, 1.0), 0.25);
}

TEST(Clamp, RejectsInvertedBounds) { EXPECT_THROW(clamp(0.0, 2.0, 1.0), Error); }

TEST(MinimizeUnimodal, FindsParabolaMinimum) {
  const double x = minimize_unimodal([](double v) { return (v - 3.0) * (v - 3.0); }, 0.0, 10.0);
  EXPECT_NEAR(x, 3.0, 1e-6);
}

TEST(MinimizeUnimodal, FindsBoundaryMinimum) {
  const double left = minimize_unimodal([](double v) { return v; }, 2.0, 9.0);
  EXPECT_NEAR(left, 2.0, 1e-5);
  const double right = minimize_unimodal([](double v) { return -v; }, 2.0, 9.0);
  EXPECT_NEAR(right, 9.0, 1e-5);
}

TEST(MinimizeUnimodal, HandlesDegenerateInterval) {
  EXPECT_DOUBLE_EQ(minimize_unimodal([](double v) { return v * v; }, 4.0, 4.0), 4.0);
}

TEST(MinimizeUnimodal, EnergyPerCycleShape) {
  // P(s)/s for P = 0.08 + 1.52 s^3 has its minimum at (0.08 / (2*1.52))^(1/3).
  const auto epc = [](double s) { return (0.08 + 1.52 * s * s * s) / s; };
  const double expected = std::pow(0.08 / (2.0 * 1.52), 1.0 / 3.0);
  EXPECT_NEAR(minimize_unimodal(epc, 1e-6, 1.0), expected, 1e-6);
}

TEST(CheckedMul, MultipliesAndDetectsOverflow) {
  EXPECT_EQ(checked_mul(1 << 20, 1 << 20), std::int64_t{1} << 40);
  EXPECT_THROW(checked_mul(std::int64_t{1} << 40, std::int64_t{1} << 40), Error);
}

TEST(CheckedLcm, ComputesLcm) {
  EXPECT_EQ(checked_lcm(4, 6), 12);
  EXPECT_EQ(checked_lcm(100, 2000), 2000);
  EXPECT_EQ(checked_lcm(7, 13), 91);
}

TEST(CheckedLcm, RejectsNonPositive) {
  EXPECT_THROW(checked_lcm(0, 5), Error);
  EXPECT_THROW(checked_lcm(5, -1), Error);
}

TEST(RetaskAssert, ThrowsOnFailure) {
  EXPECT_THROW(RETASK_ASSERT(1 == 2), Error);
  EXPECT_NO_THROW(RETASK_ASSERT(2 == 2));
}

}  // namespace
}  // namespace retask
