// Tests for the many-core scale solver: validity, the bound/baseline
// sandwich, the rounds=0 composition identity with MP-LTF-DP, bitwise
// invariance across jobs / lockstep lanes / SIMD backends, and the FFD
// placement policy under overload.
#include "retask/core/mp_scale.hpp"

#include <algorithm>
#include <limits>

#include <gtest/gtest.h>

#include "retask/core/exhaustive.hpp"
#include "retask/core/lower_bound.hpp"
#include "retask/core/multiproc.hpp"
#include "retask/simd/backend.hpp"
#include "test_util.hpp"

namespace retask {
namespace {

/// Bitwise solution equality: accept mask, placement, energy, penalty.
::testing::AssertionResult same_solution(const RejectionSolution& a,
                                         const RejectionSolution& b) {
  if (a.accepted != b.accepted) return ::testing::AssertionFailure() << "accept masks differ";
  if (a.processor_of != b.processor_of) {
    return ::testing::AssertionFailure() << "placements differ";
  }
  if (a.energy != b.energy || a.penalty != b.penalty) {
    return ::testing::AssertionFailure()
           << "objective differs: " << a.energy << "+" << a.penalty << " vs " << b.energy << "+"
           << b.penalty;
  }
  return ::testing::AssertionSuccess();
}

bool has_oversized_task(const RejectionProblem& p) {
  for (const FrameTask& task : p.tasks().tasks()) {
    if (task.cycles > p.cycle_capacity()) return true;
  }
  return false;
}

TEST(MpScale, SandwichedBetweenBoundAndLtfBaseline) {
  // LB <= OPT <= MP-SCALE <= MP-LTF-DP: the solver starts from the same LTF
  // placement and the local search only commits strict improvements.
  const MultiProcExhaustiveSolver opt;
  const MultiProcLtfRejectSolver ltf;
  const MultiProcScaleSolver scale;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    for (const int m : {2, 3}) {
      const RejectionProblem p = test::small_instance(seed, 8, 1.9, 1.0, m);
      const RejectionSolution s = scale.solve(p);
      check_solution(p, s);
      for (const Cycles load : processor_loads(p, s)) {
        EXPECT_LE(load, p.cycle_capacity());
      }
      const double o = opt.solve(p).objective();
      const double tol = 1e-9 * std::max(1.0, o);
      EXPECT_GE(s.objective(), o - tol) << "seed " << seed << " m " << m;
      EXPECT_LE(s.objective(), ltf.solve(p).objective() + tol) << "seed " << seed;
      EXPECT_GE(s.objective(), multiproc_lower_bound(p) - tol) << "seed " << seed;
    }
  }
}

TEST(MpScale, RoundsZeroReproducesMpLtfDpBitwise) {
  // With local search off and no oversized task, phase 1 + 2 is exactly the
  // toy composition: LTF placement, per-PE exact DP.
  MpScaleConfig config;
  config.local_search_rounds = 0;
  const MultiProcScaleSolver scale(config);
  const MultiProcLtfRejectSolver ltf;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const RejectionProblem p = test::small_instance(seed, 12, 2.4, 1.0, 3);
    if (has_oversized_task(p)) continue;
    EXPECT_TRUE(same_solution(scale.solve(p), ltf.solve(p))) << "seed " << seed;
  }
}

TEST(MpScale, MoreLocalSearchRoundsNeverHurt) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const RejectionProblem p = test::small_instance(seed, 14, 3.2, 1.0, 4);
    double prev = std::numeric_limits<double>::infinity();
    for (const int rounds : {0, 1, 2, 4}) {
      MpScaleConfig config;
      config.local_search_rounds = rounds;
      const double objective = MultiProcScaleSolver(config).solve(p).objective();
      EXPECT_LE(objective, prev + 1e-12) << "seed " << seed << " rounds " << rounds;
      prev = objective;
    }
  }
}

TEST(MpScale, BitwiseInvariantAcrossJobsLanesAndBackends) {
  const MultiProcScaleSolver base_solver;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const RejectionProblem p = test::small_instance(seed, 16, 3.0, 1.0, 5);
    const RejectionSolution base = base_solver.solve(p);
    for (const int jobs : {1, 2, 4}) {
      for (const int lanes : {0, 2, 8}) {
        MpScaleConfig config;
        config.jobs = jobs;
        config.lanes = lanes;
        EXPECT_TRUE(same_solution(MultiProcScaleSolver(config).solve(p), base))
            << "seed " << seed << " jobs " << jobs << " lanes " << lanes;
      }
    }
    for (const simd::Backend backend : {simd::Backend::kScalar, simd::Backend::kSse2,
                                        simd::Backend::kAvx2, simd::Backend::kNeon}) {
      if (!simd::backend_available(backend)) continue;
      simd::ScopedBackend scope(backend);
      EXPECT_TRUE(same_solution(base_solver.solve(p), base))
          << "seed " << seed << " backend " << simd::to_string(backend);
    }
  }
}

TEST(MpScale, FfdPolicyRejectsOverflowAndStaysValid) {
  // Overloaded system under feasibility-driven FFD: whatever fits nowhere is
  // rejected up front, and the solution must still verify.
  MpScaleConfig config;
  config.partition = PartitionPolicy::kFirstFitDecreasing;
  const MultiProcScaleSolver scale(config);
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const RejectionProblem p = test::small_instance(seed, 18, 6.0, 1.0, 2);
    const RejectionSolution s = scale.solve(p);
    check_solution(p, s);
    EXPECT_LT(s.accepted_count(), p.size());
    for (const Cycles load : processor_loads(p, s)) {
      EXPECT_LE(load, p.cycle_capacity());
    }
  }
}

TEST(MpScale, ManyProcessorsWithEmptyPes) {
  // m far beyond n: surplus PEs stay empty, the lockstep phase sees lanes of
  // empty/1-task subproblems, and everything still verifies.
  const RejectionProblem p = test::small_instance(4, 6, 0.9, 4.0, 32);
  const RejectionSolution s = MultiProcScaleSolver().solve(p);
  check_solution(p, s);
  EXPECT_EQ(s.accepted_count(), p.size());
}

TEST(MpScale, BoundGapRecordingStaysSound) {
  MpScaleConfig config;
  config.record_bound_gap = true;
  const MultiProcScaleSolver scale(config);
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const RejectionProblem p = test::small_instance(seed, 12, 2.2, 1.0, 3);
    const RejectionSolution s = scale.solve(p);
    const double bound = multiproc_lower_bound(p);
    EXPECT_GE(s.objective(), bound - 1e-9 * std::max(1.0, bound)) << "seed " << seed;
  }
}

}  // namespace
}  // namespace retask
