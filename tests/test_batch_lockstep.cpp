// Tests for the lockstep batch solver (batch/lockstep.hpp): solve_batch must
// reproduce per-instance base.solve() bit for bit on every backend, through
// shape grouping, ragged tails and lane-count fallbacks; the harness path
// that feeds it must stay job-count invariant; and the lane-interleaved
// relaxation kernel must match the scalar reference on every backend (it has
// no solver consumer since the lane-major fill landed, so the kernel is
// pinned here directly).
#include "retask/batch/lockstep.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "retask/cache/sweep.hpp"
#include "retask/common/error.hpp"
#include "retask/common/rng.hpp"
#include "retask/core/exact_dp.hpp"
#include "retask/core/fptas.hpp"
#include "retask/core/greedy.hpp"
#include "retask/core/lower_bound.hpp"
#include "retask/exp/harness.hpp"
#include "retask/obs/metrics.hpp"
#include "retask/simd/backend.hpp"
#include "retask/simd/kernels.hpp"
#include "test_util.hpp"

namespace retask {
namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

/// Every backend the host can actually execute (always includes scalar).
std::vector<simd::Backend> available_backends() {
  std::vector<simd::Backend> out;
  for (const simd::Backend b : {simd::Backend::kScalar, simd::Backend::kSse2,
                                simd::Backend::kAvx2, simd::Backend::kNeon}) {
    if (simd::backend_available(b)) out.push_back(b);
  }
  return out;
}

/// A same-shape fleet: one scenario config, consecutive seeds. Shape is a
/// function of the config alone (task count, capacity, curve), so every
/// member may share lockstep lanes while carrying different task data.
std::vector<RejectionProblem> make_fleet(std::size_t count, std::uint64_t seed0,
                                         int task_count = 10) {
  std::vector<RejectionProblem> fleet;
  fleet.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    fleet.push_back(test::small_instance(seed0 + i, task_count));
  }
  return fleet;
}

std::vector<const RejectionProblem*> pointers(const std::vector<RejectionProblem>& fleet) {
  std::vector<const RejectionProblem*> out;
  out.reserve(fleet.size());
  for (const RejectionProblem& p : fleet) out.push_back(&p);
  return out;
}

/// Bit-level solution equality: the accept mask and both objective facets.
void expect_identical(const std::vector<RejectionSolution>& batched,
                      const std::vector<RejectionSolution>& solo) {
  ASSERT_EQ(batched.size(), solo.size());
  for (std::size_t i = 0; i < solo.size(); ++i) {
    SCOPED_TRACE("instance " + std::to_string(i));
    EXPECT_EQ(batched[i].accepted, solo[i].accepted);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(batched[i].energy),
              std::bit_cast<std::uint64_t>(solo[i].energy));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(batched[i].penalty),
              std::bit_cast<std::uint64_t>(solo[i].penalty));
  }
}

std::vector<RejectionSolution> solve_solo(const RejectionSolver& base,
                                          const std::vector<const RejectionProblem*>& fleet) {
  std::vector<RejectionSolution> out;
  out.reserve(fleet.size());
  for (const RejectionProblem* p : fleet) out.push_back(base.solve(*p));
  return out;
}

/// Counter value by name, or 0 when absent (also in RETASK_OBS=OFF builds).
std::uint64_t counter_of(const obs::Registry& registry, const std::string& name) {
  for (const obs::MetricRow& row : obs::report_rows(registry)) {
    if (row.name == name) return static_cast<std::uint64_t>(row.numeric);
  }
  return 0;
}

/// True in builds that collect metrics (the counter assertions below are
/// vacuous otherwise).
bool obs_enabled() {
  obs::Registry probe;
  {
    obs::ActiveScope scope(probe);
    RETASK_COUNT("test_batch.probe", 1);
  }
  return counter_of(probe, "test_batch.probe") == 1;
}

TEST(BatchLockstep, LaneBitIdentityEveryBackendEverySolver) {
  const std::vector<RejectionProblem> fleet = make_fleet(8, 101);
  const std::vector<const RejectionProblem*> ptrs = pointers(fleet);
  std::vector<std::unique_ptr<RejectionSolver>> bases;
  bases.push_back(std::make_unique<ExactDpSolver>());
  bases.push_back(std::make_unique<DensityGreedySolver>());
  bases.push_back(std::make_unique<MarginalGreedySolver>());
  for (const simd::Backend backend : available_backends()) {
    simd::ScopedBackend forced(backend);
    for (const auto& base : bases) {
      SCOPED_TRACE(std::string(simd::to_string(backend)) + " / " + base->name());
      for (const int lanes : {4, 8}) {
        const BatchRejectionSolver batched(*base, BatchConfig{lanes});
        expect_identical(batched.solve_batch(ptrs), solve_solo(*base, ptrs));
      }
    }
  }
}

TEST(BatchLockstep, RaggedTailFallsBackPerInstance) {
  // 7 instances at 4 lanes: one full chunk, one 3-wide ragged chunk — and 5
  // instances make the tail a singleton, which must fall back to base.solve.
  const ExactDpSolver base;
  for (const std::size_t count : {7u, 5u}) {
    const std::vector<RejectionProblem> fleet = make_fleet(count, 211);
    const std::vector<const RejectionProblem*> ptrs = pointers(fleet);
    const BatchRejectionSolver batched(base, BatchConfig{4});
    obs::Registry metrics;
    std::vector<RejectionSolution> solutions;
    {
      obs::ActiveScope scope(metrics);
      solutions = batched.solve_batch(ptrs);
    }
    expect_identical(solutions, solve_solo(base, ptrs));
    if (obs_enabled()) {
      // 7 = chunks of 4+3 (lanes_filled 7, one padded lane); 5 = 4+1 (the
      // singleton tail is a scalar fallback, not a 1-lane chunk).
      EXPECT_EQ(counter_of(metrics, "batch.lanes_filled"), count == 7 ? 7u : 4u);
      EXPECT_EQ(counter_of(metrics, "batch.padding_waste"), count == 7 ? 1u : 0u);
      EXPECT_EQ(counter_of(metrics, "batch.scalar_fallbacks"), count == 7 ? 0u : 1u);
    }
  }
}

TEST(BatchLockstep, ShapeGroupingKeepsMixedFleetsApart) {
  // Interleave two shapes (different task counts); grouping must split them
  // into two lockstep groups and still return input-order solutions.
  std::vector<RejectionProblem> fleet;
  for (std::size_t i = 0; i < 4; ++i) {
    fleet.push_back(test::small_instance(301 + i, /*task_count=*/10));
    fleet.push_back(test::small_instance(351 + i, /*task_count=*/12));
  }
  const std::vector<const RejectionProblem*> ptrs = pointers(fleet);
  ASSERT_FALSE(same_shape(*ptrs[0], *ptrs[1]));
  ASSERT_TRUE(same_shape(*ptrs[0], *ptrs[2]));
  const MarginalGreedySolver base;
  const BatchRejectionSolver batched(base, BatchConfig{4});
  obs::Registry metrics;
  std::vector<RejectionSolution> solutions;
  {
    obs::ActiveScope scope(metrics);
    solutions = batched.solve_batch(ptrs);
  }
  expect_identical(solutions, solve_solo(base, ptrs));
  if (obs_enabled()) {
    EXPECT_EQ(counter_of(metrics, "batch.groups"), 2u);
    EXPECT_EQ(counter_of(metrics, "batch.lockstep_chunks"), 2u);
  }
}

TEST(BatchLockstep, LanesBelowTwoDisableBatching) {
  const std::vector<RejectionProblem> fleet = make_fleet(4, 401);
  const std::vector<const RejectionProblem*> ptrs = pointers(fleet);
  const ExactDpSolver base;
  const std::vector<RejectionSolution> solo = solve_solo(base, ptrs);
  for (const int lanes : {0, 1}) {
    obs::Registry metrics;
    std::vector<RejectionSolution> solutions;
    {
      obs::ActiveScope scope(metrics);
      solutions = BatchRejectionSolver(base, BatchConfig{lanes}).solve_batch(ptrs);
    }
    expect_identical(solutions, solo);
    if (obs_enabled()) {
      EXPECT_EQ(counter_of(metrics, "batch.scalar_fallbacks"), fleet.size());
    }
  }
  // BatchConfig{-1} defers to the process-wide knob; 0 there must disable
  // batching the same way (RETASK_BATCH=off resolves to exactly this).
  const int before = lockstep_lanes();
  set_lockstep_lanes(0);
  expect_identical(BatchRejectionSolver(base).solve_batch(ptrs), solo);
  set_lockstep_lanes(before);
}

TEST(BatchLockstep, SolverWithoutLockstepBodyFallsBack) {
  const std::vector<RejectionProblem> fleet = make_fleet(4, 501);
  const std::vector<const RejectionProblem*> ptrs = pointers(fleet);
  const FptasSolver base(0.1);
  const BatchRejectionSolver batched(base, BatchConfig{4});
  EXPECT_EQ(batched.name(), base.name() + "+LOCKSTEP");
  expect_identical(batched.solve_batch(ptrs), solve_solo(base, ptrs));
}

/// The harness splits the replication axis into lane blocks independently of
/// the job count, so lockstep batching must keep aggregates bit-identical at
/// jobs=1 and jobs=8 (with a lineup that exercises all three lockstep
/// bodies).
TEST(BatchLockstep, HarnessLockstepIsJobCountInvariant) {
  const auto factory = [](std::uint64_t seed) { return test::small_instance(seed, 10, 1.5); };
  const auto reference = [](const RejectionProblem& p) { return fractional_lower_bound(p); };
  std::vector<std::unique_ptr<RejectionSolver>> lineup;
  lineup.push_back(std::make_unique<ExactDpSolver>());
  lineup.push_back(std::make_unique<DensityGreedySolver>());
  lineup.push_back(std::make_unique<MarginalGreedySolver>());
  const int before = lockstep_lanes();
  set_lockstep_lanes(4);
  const auto sequential = run_comparison(factory, lineup, reference, 14, 1, /*jobs=*/1);
  const auto parallel = run_comparison(factory, lineup, reference, 14, 1, /*jobs=*/8);
  set_lockstep_lanes(before);
  ASSERT_EQ(sequential.size(), parallel.size());
  for (std::size_t a = 0; a < sequential.size(); ++a) {
    SCOPED_TRACE(sequential[a].name);
    EXPECT_EQ(sequential[a].ratio.mean(), parallel[a].ratio.mean());
    EXPECT_EQ(sequential[a].objective.mean(), parallel[a].objective.mean());
    EXPECT_EQ(sequential[a].acceptance.mean(), parallel[a].acceptance.mean());
  }
}

/// Lockstep on and off must produce identical harness aggregates — batching
/// may only change metric attribution, never a solution bit.
TEST(BatchLockstep, HarnessLockstepMatchesUnbatchedRuns) {
  const auto factory = [](std::uint64_t seed) { return test::small_instance(seed, 10, 1.5); };
  const auto reference = [](const RejectionProblem& p) { return fractional_lower_bound(p); };
  std::vector<std::unique_ptr<RejectionSolver>> lineup;
  lineup.push_back(std::make_unique<ExactDpSolver>());
  lineup.push_back(std::make_unique<MarginalGreedySolver>());
  BatchOptions on;
  BatchOptions off;
  off.lockstep = false;
  const std::vector<ProblemFactory> factories{factory};
  const int before = lockstep_lanes();
  set_lockstep_lanes(8);
  const auto batched = run_comparison_batch(factories, lineup, reference, 12, 1, 0, on);
  const auto plain = run_comparison_batch(factories, lineup, reference, 12, 1, 0, off);
  set_lockstep_lanes(before);
  for (std::size_t a = 0; a < lineup.size(); ++a) {
    SCOPED_TRACE(batched[0][a].name);
    EXPECT_EQ(batched[0][a].ratio.mean(), plain[0][a].ratio.mean());
    EXPECT_EQ(batched[0][a].objective.mean(), plain[0][a].objective.mean());
  }
}

/// Direct pin of the lane-interleaved relaxation kernel against the scalar
/// reference on every backend: random interleaved rows, per-lane bounds and
/// inactive lanes, choice bits included.
TEST(BatchLockstep, RelaxDescLanesKernelMatchesScalarEveryBackend) {
  Rng rng(0xBA7C4);
  const simd::KernelTable& scalar = simd::kernels_for(simd::Backend::kScalar);
  for (const simd::Backend backend : available_backends()) {
    const simd::KernelTable& table = simd::kernels_for(backend);
    for (const std::size_t width : {5u, 64u, 65u, 130u}) {
      for (const std::size_t lanes : {4u, 8u}) {
        SCOPED_TRACE(std::string(simd::to_string(backend)) + " width " +
                     std::to_string(width) + " lanes " + std::to_string(lanes));
        for (int round = 0; round < 16; ++round) {
          std::vector<double> row(width * lanes);
          for (double& v : row) {
            v = rng.uniform() < 0.25 ? kNegInf : rng.uniform(-50.0, 50.0);
          }
          const std::size_t words = (width * lanes + 63) / 64;
          std::vector<std::uint64_t> take(words, 0);
          std::vector<std::size_t> shift(lanes), lo(lanes), hi(lanes);
          std::vector<double> add(lanes);
          std::vector<unsigned char> active(lanes);
          for (std::size_t k = 0; k < lanes; ++k) {
            shift[k] = static_cast<std::size_t>(
                rng.uniform_int(1, static_cast<std::int64_t>(width) - 1));
            lo[k] = static_cast<std::size_t>(
                rng.uniform_int(static_cast<std::int64_t>(shift[k]),
                                static_cast<std::int64_t>(width) - 1));
            hi[k] = static_cast<std::size_t>(
                rng.uniform_int(static_cast<std::int64_t>(lo[k]),
                                static_cast<std::int64_t>(width) - 1));
            add[k] = rng.uniform(0.0, 10.0);
            active[k] = rng.uniform() < 0.75 ? 1 : 0;
          }
          std::vector<double> want_row = row;
          std::vector<std::uint64_t> want_take = take;
          scalar.relax_desc_f64_lanes(want_row.data(), want_take.data(), lanes, shift.data(),
                                      lo.data(), hi.data(), add.data(), active.data());
          std::vector<double> got_row = row;
          std::vector<std::uint64_t> got_take = take;
          table.relax_desc_f64_lanes(got_row.data(), got_take.data(), lanes, shift.data(),
                                     lo.data(), hi.data(), add.data(), active.data());
          for (std::size_t i = 0; i < got_row.size(); ++i) {
            ASSERT_EQ(std::bit_cast<std::uint64_t>(got_row[i]),
                      std::bit_cast<std::uint64_t>(want_row[i]))
                << "cell " << i;
          }
          ASSERT_EQ(got_take, want_take);
        }
      }
    }
  }
}

/// Builds a (instance x point) capacity-sweep grid over a same-shape fleet
/// and returns pointer grids into `sweeps` (which must outlive the result).
std::vector<std::vector<const RejectionProblem*>> sweep_grids(
    const std::vector<RejectionProblem>& fleet, std::vector<std::vector<RejectionProblem>>& sweeps) {
  const std::vector<double> factors{0.5, 0.8, 1.0};
  sweeps.clear();
  sweeps.reserve(fleet.size());
  for (const RejectionProblem& instance : fleet) {
    sweeps.push_back(make_capacity_sweep(instance, factors));
  }
  std::vector<std::vector<const RejectionProblem*>> grids(sweeps.size());
  for (std::size_t i = 0; i < sweeps.size(); ++i) {
    for (const RejectionProblem& point : sweeps[i]) grids[i].push_back(&point);
  }
  return grids;
}

void expect_grid_identical(const std::vector<std::vector<RejectionSolution>>& fused,
                           const std::vector<std::vector<RejectionSolution>>& want) {
  ASSERT_EQ(fused.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    SCOPED_TRACE("grid instance " + std::to_string(i));
    expect_identical(fused[i], want[i]);
  }
}

TEST(BatchLockstep, FusedSweepMatchesWarmAndColdEveryBackend) {
  // 5 instances at 4 lanes: one full fused chunk plus a ragged singleton
  // tail (which must take the per-instance fallback); at 8 lanes, one
  // padded chunk. Every cell must match both the instance's own warm
  // solve_sweep and a cold per-point solve, bit for bit.
  const std::vector<RejectionProblem> fleet = make_fleet(5, 701);
  std::vector<std::vector<RejectionProblem>> sweeps;
  const std::vector<std::vector<const RejectionProblem*>> grids = sweep_grids(fleet, sweeps);
  const ExactDpSolver base;
  // Force the process-wide knob on: a RETASK_FUSED_SWEEP=off environment
  // (the CI fallback leg) must not hollow this test out.
  const bool knob = fused_sweep_enabled();
  set_fused_sweep_enabled(true);
  for (const simd::Backend backend : available_backends()) {
    simd::ScopedBackend forced(backend);
    SCOPED_TRACE(std::string(simd::to_string(backend)));
    std::vector<std::vector<RejectionSolution>> warm(grids.size());
    std::vector<std::vector<RejectionSolution>> cold(grids.size());
    for (std::size_t i = 0; i < grids.size(); ++i) {
      warm[i] = base.solve_sweep(grids[i]);
      cold[i] = solve_solo(base, grids[i]);
    }
    expect_grid_identical(warm, cold);  // the warm baseline itself
    for (const int lanes : {4, 8}) {
      SCOPED_TRACE("lanes " + std::to_string(lanes));
      const BatchRejectionSolver batched(base, BatchConfig{lanes});
      obs::Registry metrics;
      std::vector<std::vector<RejectionSolution>> fused;
      {
        obs::ActiveScope scope(metrics);
        fused = batched.solve_sweep_batch(grids);
      }
      expect_grid_identical(fused, warm);
      if (obs_enabled()) {
        // 4 lanes: 4 fused instances x 3 points + 1 fallback; 8 lanes: all 5
        // fused. The fallback instance still warm-starts through its own
        // solve_sweep, so it never contributes fused points.
        EXPECT_EQ(counter_of(metrics, "batch.fused_sweep_points"), lanes == 4 ? 12u : 15u);
        EXPECT_EQ(counter_of(metrics, "batch.sweep_fallbacks"), lanes == 4 ? 1u : 0u);
        EXPECT_GT(counter_of(metrics, "batch.select_scan_words"), 0u);
      }
    }
  }
  set_fused_sweep_enabled(knob);
}

TEST(BatchLockstep, FusedSweepFallsBackForNonLockstepSolversAndKnobOff) {
  const std::vector<RejectionProblem> fleet = make_fleet(4, 801);
  std::vector<std::vector<RejectionProblem>> sweeps;
  const std::vector<std::vector<const RejectionProblem*>> grids = sweep_grids(fleet, sweeps);

  const bool knob = fused_sweep_enabled();
  set_fused_sweep_enabled(true);

  // Greedy bases have no fused sweep body: every instance falls back to its
  // own solve_sweep, bit-identically.
  const MarginalGreedySolver greedy;
  std::vector<std::vector<RejectionSolution>> want(grids.size());
  for (std::size_t i = 0; i < grids.size(); ++i) want[i] = greedy.solve_sweep(grids[i]);
  {
    obs::Registry metrics;
    std::vector<std::vector<RejectionSolution>> got;
    {
      obs::ActiveScope scope(metrics);
      got = BatchRejectionSolver(greedy, BatchConfig{4}).solve_sweep_batch(grids);
    }
    expect_grid_identical(got, want);
    if (obs_enabled()) {
      EXPECT_EQ(counter_of(metrics, "batch.sweep_fallbacks"), grids.size());
      EXPECT_EQ(counter_of(metrics, "batch.fused_sweep_points"), 0u);
    }
  }

  // RETASK_FUSED_SWEEP=off (the process-wide knob) must route the exact DP
  // through the same per-instance fallback without changing a bit.
  const ExactDpSolver exact;
  for (std::size_t i = 0; i < grids.size(); ++i) want[i] = exact.solve_sweep(grids[i]);
  set_fused_sweep_enabled(false);
  obs::Registry metrics;
  std::vector<std::vector<RejectionSolution>> got;
  {
    obs::ActiveScope scope(metrics);
    got = BatchRejectionSolver(exact, BatchConfig{4}).solve_sweep_batch(grids);
  }
  set_fused_sweep_enabled(knob);
  expect_grid_identical(got, want);
  if (obs_enabled()) {
    EXPECT_EQ(counter_of(metrics, "batch.sweep_fallbacks"), grids.size());
    EXPECT_EQ(counter_of(metrics, "batch.fused_sweep_points"), 0u);
  }
}

TEST(BatchLockstep, SolveBatchCapturesTablesForLockstepLanesOnly) {
  // Exact-DP lanes export their filled tables; fallback routes (singleton
  // tails, no-lockstep bases) leave their LockstepTables slots empty.
  const std::vector<RejectionProblem> fleet = make_fleet(5, 901);
  const std::vector<const RejectionProblem*> ptrs = pointers(fleet);
  const ExactDpSolver exact;
  LockstepTables tables;
  const std::vector<RejectionSolution> solved =
      BatchRejectionSolver(exact, BatchConfig{4}).solve_batch(ptrs, &tables);
  expect_identical(solved, solve_solo(exact, ptrs));
  ASSERT_EQ(tables.exports.size(), fleet.size());
  for (std::size_t i = 0; i + 1 < fleet.size(); ++i) {
    SCOPED_TRACE("lane " + std::to_string(i));
    const DpTableExport& table = tables.exports[i];
    ASSERT_FALSE(table.value.empty());
    EXPECT_EQ(table.take.rows(), fleet[i].size());
    EXPECT_GE(table.checkpoint_stride, 1);
    EXPECT_EQ(table.cp_values.size(), fleet[i].size() / static_cast<std::size_t>(
                                          table.checkpoint_stride));
    EXPECT_EQ(table.cp_reach.size(), table.cp_values.size());
  }
  // The 5th instance is a singleton tail -> scalar fallback, no capture.
  EXPECT_TRUE(tables.exports.back().value.empty());

  // A base without a lockstep body captures nothing anywhere.
  const FptasSolver fptas(0.1);
  LockstepTables none;
  BatchRejectionSolver(fptas, BatchConfig{4}).solve_batch(ptrs, &none);
  ASSERT_EQ(none.exports.size(), fleet.size());
  for (const DpTableExport& table : none.exports) EXPECT_TRUE(table.value.empty());
}

/// Fused sweeps on and off must produce identical harness aggregates — like
/// lockstep, fusion may only change metric attribution, never a solution bit.
TEST(BatchLockstep, HarnessFusedSweepMatchesUnfusedRuns) {
  const auto base_factory = [](std::uint64_t seed) { return test::small_instance(seed, 10, 1.5); };
  // A 3-point capacity sweep: same task set per seed, scaled capacity per
  // point — exactly the sweep_reuse grouping the fused path rides on.
  std::vector<ProblemFactory> factories;
  for (const double factor : {0.5, 0.8, 1.0}) {
    factories.push_back([base_factory, factor](std::uint64_t seed) {
      return make_capacity_sweep(base_factory(seed), {factor}).front();
    });
  }
  const auto reference = [](const RejectionProblem& p) { return fractional_lower_bound(p); };
  std::vector<std::unique_ptr<RejectionSolver>> lineup;
  lineup.push_back(std::make_unique<ExactDpSolver>());
  lineup.push_back(std::make_unique<MarginalGreedySolver>());
  BatchOptions on;
  BatchOptions off;
  off.fused_sweep = false;
  const int before = lockstep_lanes();
  const bool knob = fused_sweep_enabled();
  set_lockstep_lanes(4);
  set_fused_sweep_enabled(true);
  const auto fused = run_comparison_batch(factories, lineup, reference, 10, 1, 0, on);
  const auto plain = run_comparison_batch(factories, lineup, reference, 10, 1, 0, off);
  set_lockstep_lanes(before);
  set_fused_sweep_enabled(knob);
  ASSERT_EQ(fused.size(), plain.size());
  for (std::size_t point = 0; point < fused.size(); ++point) {
    for (std::size_t a = 0; a < lineup.size(); ++a) {
      SCOPED_TRACE("point " + std::to_string(point) + " " + fused[point][a].name);
      EXPECT_EQ(fused[point][a].ratio.mean(), plain[point][a].ratio.mean());
      EXPECT_EQ(fused[point][a].objective.mean(), plain[point][a].objective.mean());
      EXPECT_EQ(fused[point][a].acceptance.mean(), plain[point][a].acceptance.mean());
    }
  }
}

TEST(BatchLockstep, SameShapeRejectsDifferentGeometry) {
  const RejectionProblem a = test::small_instance(601, 10);
  const RejectionProblem b = test::small_instance(602, 10);
  EXPECT_TRUE(same_shape(a, b));
  EXPECT_FALSE(same_shape(a, test::small_instance(603, 12)));           // task count
  EXPECT_FALSE(same_shape(a, test::small_instance(604, 10, 1.4, 1.0,   // processors
                                                  /*processors=*/2)));
  EXPECT_FALSE(same_shape(
      a, test::small_instance(605, 10, 1.4, 1.0, 1, IdleDiscipline::kDormantDisable)));  // curve
}

TEST(BatchLockstep, LaneKnobValidatesItsRange) {
  const int before = lockstep_lanes();
  EXPECT_THROW(set_lockstep_lanes(-2), Error);
  EXPECT_THROW(set_lockstep_lanes(65), Error);
  set_lockstep_lanes(before);
}

}  // namespace
}  // namespace retask
