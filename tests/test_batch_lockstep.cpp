// Tests for the lockstep batch solver (batch/lockstep.hpp): solve_batch must
// reproduce per-instance base.solve() bit for bit on every backend, through
// shape grouping, ragged tails and lane-count fallbacks; the harness path
// that feeds it must stay job-count invariant; and the lane-interleaved
// relaxation kernel must match the scalar reference on every backend (it has
// no solver consumer since the lane-major fill landed, so the kernel is
// pinned here directly).
#include "retask/batch/lockstep.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "retask/common/error.hpp"
#include "retask/common/rng.hpp"
#include "retask/core/exact_dp.hpp"
#include "retask/core/fptas.hpp"
#include "retask/core/greedy.hpp"
#include "retask/core/lower_bound.hpp"
#include "retask/exp/harness.hpp"
#include "retask/obs/metrics.hpp"
#include "retask/simd/backend.hpp"
#include "retask/simd/kernels.hpp"
#include "test_util.hpp"

namespace retask {
namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

/// Every backend the host can actually execute (always includes scalar).
std::vector<simd::Backend> available_backends() {
  std::vector<simd::Backend> out;
  for (const simd::Backend b : {simd::Backend::kScalar, simd::Backend::kSse2,
                                simd::Backend::kAvx2, simd::Backend::kNeon}) {
    if (simd::backend_available(b)) out.push_back(b);
  }
  return out;
}

/// A same-shape fleet: one scenario config, consecutive seeds. Shape is a
/// function of the config alone (task count, capacity, curve), so every
/// member may share lockstep lanes while carrying different task data.
std::vector<RejectionProblem> make_fleet(std::size_t count, std::uint64_t seed0,
                                         int task_count = 10) {
  std::vector<RejectionProblem> fleet;
  fleet.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    fleet.push_back(test::small_instance(seed0 + i, task_count));
  }
  return fleet;
}

std::vector<const RejectionProblem*> pointers(const std::vector<RejectionProblem>& fleet) {
  std::vector<const RejectionProblem*> out;
  out.reserve(fleet.size());
  for (const RejectionProblem& p : fleet) out.push_back(&p);
  return out;
}

/// Bit-level solution equality: the accept mask and both objective facets.
void expect_identical(const std::vector<RejectionSolution>& batched,
                      const std::vector<RejectionSolution>& solo) {
  ASSERT_EQ(batched.size(), solo.size());
  for (std::size_t i = 0; i < solo.size(); ++i) {
    SCOPED_TRACE("instance " + std::to_string(i));
    EXPECT_EQ(batched[i].accepted, solo[i].accepted);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(batched[i].energy),
              std::bit_cast<std::uint64_t>(solo[i].energy));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(batched[i].penalty),
              std::bit_cast<std::uint64_t>(solo[i].penalty));
  }
}

std::vector<RejectionSolution> solve_solo(const RejectionSolver& base,
                                          const std::vector<const RejectionProblem*>& fleet) {
  std::vector<RejectionSolution> out;
  out.reserve(fleet.size());
  for (const RejectionProblem* p : fleet) out.push_back(base.solve(*p));
  return out;
}

/// Counter value by name, or 0 when absent (also in RETASK_OBS=OFF builds).
std::uint64_t counter_of(const obs::Registry& registry, const std::string& name) {
  for (const obs::MetricRow& row : obs::report_rows(registry)) {
    if (row.name == name) return static_cast<std::uint64_t>(row.numeric);
  }
  return 0;
}

/// True in builds that collect metrics (the counter assertions below are
/// vacuous otherwise).
bool obs_enabled() {
  obs::Registry probe;
  {
    obs::ActiveScope scope(probe);
    RETASK_COUNT("test_batch.probe", 1);
  }
  return counter_of(probe, "test_batch.probe") == 1;
}

TEST(BatchLockstep, LaneBitIdentityEveryBackendEverySolver) {
  const std::vector<RejectionProblem> fleet = make_fleet(8, 101);
  const std::vector<const RejectionProblem*> ptrs = pointers(fleet);
  std::vector<std::unique_ptr<RejectionSolver>> bases;
  bases.push_back(std::make_unique<ExactDpSolver>());
  bases.push_back(std::make_unique<DensityGreedySolver>());
  bases.push_back(std::make_unique<MarginalGreedySolver>());
  for (const simd::Backend backend : available_backends()) {
    simd::ScopedBackend forced(backend);
    for (const auto& base : bases) {
      SCOPED_TRACE(std::string(simd::to_string(backend)) + " / " + base->name());
      for (const int lanes : {4, 8}) {
        const BatchRejectionSolver batched(*base, BatchConfig{lanes});
        expect_identical(batched.solve_batch(ptrs), solve_solo(*base, ptrs));
      }
    }
  }
}

TEST(BatchLockstep, RaggedTailFallsBackPerInstance) {
  // 7 instances at 4 lanes: one full chunk, one 3-wide ragged chunk — and 5
  // instances make the tail a singleton, which must fall back to base.solve.
  const ExactDpSolver base;
  for (const std::size_t count : {7u, 5u}) {
    const std::vector<RejectionProblem> fleet = make_fleet(count, 211);
    const std::vector<const RejectionProblem*> ptrs = pointers(fleet);
    const BatchRejectionSolver batched(base, BatchConfig{4});
    obs::Registry metrics;
    std::vector<RejectionSolution> solutions;
    {
      obs::ActiveScope scope(metrics);
      solutions = batched.solve_batch(ptrs);
    }
    expect_identical(solutions, solve_solo(base, ptrs));
    if (obs_enabled()) {
      // 7 = chunks of 4+3 (lanes_filled 7, one padded lane); 5 = 4+1 (the
      // singleton tail is a scalar fallback, not a 1-lane chunk).
      EXPECT_EQ(counter_of(metrics, "batch.lanes_filled"), count == 7 ? 7u : 4u);
      EXPECT_EQ(counter_of(metrics, "batch.padding_waste"), count == 7 ? 1u : 0u);
      EXPECT_EQ(counter_of(metrics, "batch.scalar_fallbacks"), count == 7 ? 0u : 1u);
    }
  }
}

TEST(BatchLockstep, ShapeGroupingKeepsMixedFleetsApart) {
  // Interleave two shapes (different task counts); grouping must split them
  // into two lockstep groups and still return input-order solutions.
  std::vector<RejectionProblem> fleet;
  for (std::size_t i = 0; i < 4; ++i) {
    fleet.push_back(test::small_instance(301 + i, /*task_count=*/10));
    fleet.push_back(test::small_instance(351 + i, /*task_count=*/12));
  }
  const std::vector<const RejectionProblem*> ptrs = pointers(fleet);
  ASSERT_FALSE(same_shape(*ptrs[0], *ptrs[1]));
  ASSERT_TRUE(same_shape(*ptrs[0], *ptrs[2]));
  const MarginalGreedySolver base;
  const BatchRejectionSolver batched(base, BatchConfig{4});
  obs::Registry metrics;
  std::vector<RejectionSolution> solutions;
  {
    obs::ActiveScope scope(metrics);
    solutions = batched.solve_batch(ptrs);
  }
  expect_identical(solutions, solve_solo(base, ptrs));
  if (obs_enabled()) {
    EXPECT_EQ(counter_of(metrics, "batch.groups"), 2u);
    EXPECT_EQ(counter_of(metrics, "batch.lockstep_chunks"), 2u);
  }
}

TEST(BatchLockstep, LanesBelowTwoDisableBatching) {
  const std::vector<RejectionProblem> fleet = make_fleet(4, 401);
  const std::vector<const RejectionProblem*> ptrs = pointers(fleet);
  const ExactDpSolver base;
  const std::vector<RejectionSolution> solo = solve_solo(base, ptrs);
  for (const int lanes : {0, 1}) {
    obs::Registry metrics;
    std::vector<RejectionSolution> solutions;
    {
      obs::ActiveScope scope(metrics);
      solutions = BatchRejectionSolver(base, BatchConfig{lanes}).solve_batch(ptrs);
    }
    expect_identical(solutions, solo);
    if (obs_enabled()) {
      EXPECT_EQ(counter_of(metrics, "batch.scalar_fallbacks"), fleet.size());
    }
  }
  // BatchConfig{-1} defers to the process-wide knob; 0 there must disable
  // batching the same way (RETASK_BATCH=off resolves to exactly this).
  const int before = lockstep_lanes();
  set_lockstep_lanes(0);
  expect_identical(BatchRejectionSolver(base).solve_batch(ptrs), solo);
  set_lockstep_lanes(before);
}

TEST(BatchLockstep, SolverWithoutLockstepBodyFallsBack) {
  const std::vector<RejectionProblem> fleet = make_fleet(4, 501);
  const std::vector<const RejectionProblem*> ptrs = pointers(fleet);
  const FptasSolver base(0.1);
  const BatchRejectionSolver batched(base, BatchConfig{4});
  EXPECT_EQ(batched.name(), base.name() + "+LOCKSTEP");
  expect_identical(batched.solve_batch(ptrs), solve_solo(base, ptrs));
}

/// The harness splits the replication axis into lane blocks independently of
/// the job count, so lockstep batching must keep aggregates bit-identical at
/// jobs=1 and jobs=8 (with a lineup that exercises all three lockstep
/// bodies).
TEST(BatchLockstep, HarnessLockstepIsJobCountInvariant) {
  const auto factory = [](std::uint64_t seed) { return test::small_instance(seed, 10, 1.5); };
  const auto reference = [](const RejectionProblem& p) { return fractional_lower_bound(p); };
  std::vector<std::unique_ptr<RejectionSolver>> lineup;
  lineup.push_back(std::make_unique<ExactDpSolver>());
  lineup.push_back(std::make_unique<DensityGreedySolver>());
  lineup.push_back(std::make_unique<MarginalGreedySolver>());
  const int before = lockstep_lanes();
  set_lockstep_lanes(4);
  const auto sequential = run_comparison(factory, lineup, reference, 14, 1, /*jobs=*/1);
  const auto parallel = run_comparison(factory, lineup, reference, 14, 1, /*jobs=*/8);
  set_lockstep_lanes(before);
  ASSERT_EQ(sequential.size(), parallel.size());
  for (std::size_t a = 0; a < sequential.size(); ++a) {
    SCOPED_TRACE(sequential[a].name);
    EXPECT_EQ(sequential[a].ratio.mean(), parallel[a].ratio.mean());
    EXPECT_EQ(sequential[a].objective.mean(), parallel[a].objective.mean());
    EXPECT_EQ(sequential[a].acceptance.mean(), parallel[a].acceptance.mean());
  }
}

/// Lockstep on and off must produce identical harness aggregates — batching
/// may only change metric attribution, never a solution bit.
TEST(BatchLockstep, HarnessLockstepMatchesUnbatchedRuns) {
  const auto factory = [](std::uint64_t seed) { return test::small_instance(seed, 10, 1.5); };
  const auto reference = [](const RejectionProblem& p) { return fractional_lower_bound(p); };
  std::vector<std::unique_ptr<RejectionSolver>> lineup;
  lineup.push_back(std::make_unique<ExactDpSolver>());
  lineup.push_back(std::make_unique<MarginalGreedySolver>());
  BatchOptions on;
  BatchOptions off;
  off.lockstep = false;
  const std::vector<ProblemFactory> factories{factory};
  const int before = lockstep_lanes();
  set_lockstep_lanes(8);
  const auto batched = run_comparison_batch(factories, lineup, reference, 12, 1, 0, on);
  const auto plain = run_comparison_batch(factories, lineup, reference, 12, 1, 0, off);
  set_lockstep_lanes(before);
  for (std::size_t a = 0; a < lineup.size(); ++a) {
    SCOPED_TRACE(batched[0][a].name);
    EXPECT_EQ(batched[0][a].ratio.mean(), plain[0][a].ratio.mean());
    EXPECT_EQ(batched[0][a].objective.mean(), plain[0][a].objective.mean());
  }
}

/// Direct pin of the lane-interleaved relaxation kernel against the scalar
/// reference on every backend: random interleaved rows, per-lane bounds and
/// inactive lanes, choice bits included.
TEST(BatchLockstep, RelaxDescLanesKernelMatchesScalarEveryBackend) {
  Rng rng(0xBA7C4);
  const simd::KernelTable& scalar = simd::kernels_for(simd::Backend::kScalar);
  for (const simd::Backend backend : available_backends()) {
    const simd::KernelTable& table = simd::kernels_for(backend);
    for (const std::size_t width : {5u, 64u, 65u, 130u}) {
      for (const std::size_t lanes : {4u, 8u}) {
        SCOPED_TRACE(std::string(simd::to_string(backend)) + " width " +
                     std::to_string(width) + " lanes " + std::to_string(lanes));
        for (int round = 0; round < 16; ++round) {
          std::vector<double> row(width * lanes);
          for (double& v : row) {
            v = rng.uniform() < 0.25 ? kNegInf : rng.uniform(-50.0, 50.0);
          }
          const std::size_t words = (width * lanes + 63) / 64;
          std::vector<std::uint64_t> take(words, 0);
          std::vector<std::size_t> shift(lanes), lo(lanes), hi(lanes);
          std::vector<double> add(lanes);
          std::vector<unsigned char> active(lanes);
          for (std::size_t k = 0; k < lanes; ++k) {
            shift[k] = static_cast<std::size_t>(
                rng.uniform_int(1, static_cast<std::int64_t>(width) - 1));
            lo[k] = static_cast<std::size_t>(
                rng.uniform_int(static_cast<std::int64_t>(shift[k]),
                                static_cast<std::int64_t>(width) - 1));
            hi[k] = static_cast<std::size_t>(
                rng.uniform_int(static_cast<std::int64_t>(lo[k]),
                                static_cast<std::int64_t>(width) - 1));
            add[k] = rng.uniform(0.0, 10.0);
            active[k] = rng.uniform() < 0.75 ? 1 : 0;
          }
          std::vector<double> want_row = row;
          std::vector<std::uint64_t> want_take = take;
          scalar.relax_desc_f64_lanes(want_row.data(), want_take.data(), lanes, shift.data(),
                                      lo.data(), hi.data(), add.data(), active.data());
          std::vector<double> got_row = row;
          std::vector<std::uint64_t> got_take = take;
          table.relax_desc_f64_lanes(got_row.data(), got_take.data(), lanes, shift.data(),
                                     lo.data(), hi.data(), add.data(), active.data());
          for (std::size_t i = 0; i < got_row.size(); ++i) {
            ASSERT_EQ(std::bit_cast<std::uint64_t>(got_row[i]),
                      std::bit_cast<std::uint64_t>(want_row[i]))
                << "cell " << i;
          }
          ASSERT_EQ(got_take, want_take);
        }
      }
    }
  }
}

TEST(BatchLockstep, SameShapeRejectsDifferentGeometry) {
  const RejectionProblem a = test::small_instance(601, 10);
  const RejectionProblem b = test::small_instance(602, 10);
  EXPECT_TRUE(same_shape(a, b));
  EXPECT_FALSE(same_shape(a, test::small_instance(603, 12)));           // task count
  EXPECT_FALSE(same_shape(a, test::small_instance(604, 10, 1.4, 1.0,   // processors
                                                  /*processors=*/2)));
  EXPECT_FALSE(same_shape(
      a, test::small_instance(605, 10, 1.4, 1.0, 1, IdleDiscipline::kDormantDisable)));  // curve
}

TEST(BatchLockstep, LaneKnobValidatesItsRange) {
  const int before = lockstep_lanes();
  EXPECT_THROW(set_lockstep_lanes(-2), Error);
  EXPECT_THROW(set_lockstep_lanes(65), Error);
  set_lockstep_lanes(before);
}

}  // namespace
}  // namespace retask
