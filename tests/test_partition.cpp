// Unit tests for the partition heuristics (LTF, in-order, shuffled,
// first-fit).
#include "retask/sched/partition.hpp"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "retask/common/error.hpp"
#include "retask/common/rng.hpp"

namespace retask {
namespace {

TEST(Partition, LtfBalancesKnownInstance) {
  // Classic LTF behaviour: {7, 5, 4, 2} on 2 bins -> {7, 2} and {5, 4}.
  const Partition p = partition_items({5.0, 7.0, 2.0, 4.0}, 2, PartitionPolicy::kLargestFirst);
  ASSERT_EQ(p.loads.size(), 2u);
  EXPECT_DOUBLE_EQ(p.max_load(), 9.0);
  EXPECT_DOUBLE_EQ(p.loads[0] + p.loads[1], 18.0);
  // 7 and 2 share a bin; 5 and 4 share the other.
  EXPECT_EQ(p.bin_of[1], p.bin_of[2]);
  EXPECT_EQ(p.bin_of[0], p.bin_of[3]);
  EXPECT_NE(p.bin_of[0], p.bin_of[1]);
}

TEST(Partition, LtfMaxLoadWithinGrahamBound) {
  // LTF (a.k.a. LPT) max load is at most 4/3 - 1/(3m) of optimal; against
  // the trivial lower bound max(avg, largest) it stays within 4/3.
  Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> weights(12);
    double total = 0.0;
    double largest = 0.0;
    for (double& w : weights) {
      w = rng.uniform(0.5, 10.0);
      total += w;
      largest = std::max(largest, w);
    }
    const int m = 3;
    const Partition p = partition_items(weights, m, PartitionPolicy::kLargestFirst);
    const double lb = std::max(total / m, largest);
    EXPECT_LE(p.max_load(), lb * (4.0 / 3.0) + 1e-9);
  }
}

TEST(Partition, InOrderAssignsToLightestBin) {
  const Partition p = partition_items({3.0, 3.0, 1.0}, 2, PartitionPolicy::kInOrder);
  EXPECT_EQ(p.bin_of[0], 0);
  EXPECT_EQ(p.bin_of[1], 1);
  EXPECT_EQ(p.bin_of[2], 0);  // lightest after {3, 3} is bin 0 (tie -> first)
  EXPECT_DOUBLE_EQ(p.loads[0], 4.0);
}

TEST(Partition, EveryItemAssignedWithoutCapacity) {
  Rng rng(7);
  const Partition p =
      partition_items({1.0, 2.0, 3.0, 4.0, 5.0}, 3, PartitionPolicy::kShuffled, 0.0, &rng);
  double sum = 0.0;
  for (const int b : p.bin_of) {
    EXPECT_GE(b, 0);
    EXPECT_LT(b, 3);
  }
  for (const double l : p.loads) sum += l;
  EXPECT_DOUBLE_EQ(sum, 15.0);
}

TEST(Partition, ShuffledRequiresRng) {
  EXPECT_THROW(partition_items({1.0}, 1, PartitionPolicy::kShuffled), Error);
}

TEST(Partition, FirstFitRespectsCapacity) {
  const Partition p =
      partition_items({0.6, 0.6, 0.3, 0.3}, 2, PartitionPolicy::kFirstFit, 1.0);
  EXPECT_EQ(p.bin_of[0], 0);
  EXPECT_EQ(p.bin_of[1], 1);
  EXPECT_EQ(p.bin_of[2], 0);
  EXPECT_EQ(p.bin_of[3], 1);
  for (const double l : p.loads) EXPECT_LE(l, 1.0 + 1e-9);
}

TEST(Partition, FirstFitLeavesOversizedItemsUnassigned) {
  const Partition p = partition_items({1.5, 0.5}, 1, PartitionPolicy::kFirstFit, 1.0);
  EXPECT_EQ(p.bin_of[0], -1);
  EXPECT_EQ(p.bin_of[1], 0);
}

TEST(Partition, FirstFitRequiresCapacity) {
  EXPECT_THROW(partition_items({1.0}, 1, PartitionPolicy::kFirstFit, 0.0), Error);
  EXPECT_THROW(partition_items({1.0}, 1, PartitionPolicy::kBestFit, 0.0), Error);
}

TEST(Partition, BestFitPicksTightestBin) {
  // Pre-load two bins via 0.7 and 0.4, then place 0.25: first-fit takes the
  // first bin with space (bin 0: 0.7 + 0.25 <= 1), best-fit also bin 0 (the
  // fuller one). Place 0.5 afterwards: only bin 1 fits under either.
  const Partition ff =
      partition_items({0.7, 0.4, 0.25, 0.5}, 2, PartitionPolicy::kFirstFit, 1.0);
  const Partition bf = partition_items({0.7, 0.4, 0.25, 0.5}, 2, PartitionPolicy::kBestFit, 1.0);
  EXPECT_EQ(ff.bin_of[2], 0);
  EXPECT_EQ(bf.bin_of[2], 0);
  EXPECT_EQ(bf.bin_of[3], 1);

  // A case where they genuinely differ: bins end up at 0.5 and 0.6; item
  // 0.35 goes to bin 0 under first-fit but to the tighter bin 1 under
  // best-fit.
  const Partition ff2 =
      partition_items({0.5, 0.6, 0.35}, 2, PartitionPolicy::kFirstFit, 1.0);
  const Partition bf2 = partition_items({0.5, 0.6, 0.35}, 2, PartitionPolicy::kBestFit, 1.0);
  EXPECT_EQ(ff2.bin_of[2], 0);
  EXPECT_EQ(bf2.bin_of[2], 1);
}

TEST(Partition, BestFitNeverUsesMoreBinsThanFirstFitHere) {
  Rng rng(31);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<double> weights(14);
    for (double& w : weights) w = rng.uniform(0.1, 0.7);
    const Partition ff = partition_items(weights, 14, PartitionPolicy::kFirstFit, 1.0);
    const Partition bf = partition_items(weights, 14, PartitionPolicy::kBestFit, 1.0);
    const auto used = [](const Partition& p) {
      int bins = 0;
      for (const double load : p.loads) bins += load > 0.0 ? 1 : 0;
      return bins;
    };
    // Everything placed under both policies.
    for (const int b : ff.bin_of) EXPECT_GE(b, 0);
    for (const int b : bf.bin_of) EXPECT_GE(b, 0);
    // Not a theorem in general, but holds on these instances and guards the
    // implementation against regressions that waste bins.
    EXPECT_LE(used(bf), used(ff) + 1) << "trial " << trial;
  }
}

TEST(Partition, FastPathsMatchReferenceBitwise) {
  // The heap / tournament-tree placement must reproduce the linear-scan
  // reference bit for bit: same bins, same loads, every policy, bin counts
  // straddling the d-ary heap arities and the tournament-tree leaf padding.
  Rng rng(101);
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<double> weights(static_cast<std::size_t>(rng.uniform(1.0, 40.0)));
    for (double& w : weights) {
      // Quantized weights so exact ties are common and the (load, bin)
      // lexicographic tie-break is actually exercised.
      w = 0.25 * static_cast<double>(1 + static_cast<int>(rng.uniform(0.0, 8.0)));
    }
    for (const int bins : {1, 2, 3, 7, 64, 257}) {
      for (const PartitionPolicy policy :
           {PartitionPolicy::kLargestFirst, PartitionPolicy::kInOrder,
            PartitionPolicy::kFirstFit, PartitionPolicy::kBestFit,
            PartitionPolicy::kFirstFitDecreasing}) {
        const bool capped = policy == PartitionPolicy::kFirstFit ||
                            policy == PartitionPolicy::kBestFit ||
                            policy == PartitionPolicy::kFirstFitDecreasing;
        const double capacity = capped ? 2.5 : 0.0;
        const Partition fast = partition_items(weights, bins, policy, capacity);
        const Partition ref = partition_items_reference(weights, bins, policy, capacity);
        ASSERT_EQ(fast.bin_of, ref.bin_of) << "trial " << trial << " bins " << bins;
        ASSERT_EQ(fast.loads.size(), ref.loads.size());
        for (std::size_t b = 0; b < fast.loads.size(); ++b) {
          EXPECT_DOUBLE_EQ(fast.loads[b], ref.loads[b]) << "trial " << trial;
        }
      }
      // kShuffled consumes the rng; twin streams keep the orders identical.
      Rng fast_rng(rng());
      Rng ref_rng = fast_rng;
      const Partition fast =
          partition_items(weights, bins, PartitionPolicy::kShuffled, 0.0, &fast_rng);
      const Partition ref = partition_items_reference(weights, bins, PartitionPolicy::kShuffled,
                                                      0.0, &ref_rng);
      ASSERT_EQ(fast.bin_of, ref.bin_of) << "trial " << trial << " bins " << bins;
    }
  }
}

TEST(Partition, LargeBinCountTiesGoRoundRobin) {
  // Uniform weights on the heap path: every placement is an all-bins tie, so
  // the lexicographic (load, bin) order must sweep the bins left to right,
  // wave after wave — exactly what the linear scan does.
  const std::vector<double> weights(130, 1.0);
  const Partition p = partition_items(weights, 64, PartitionPolicy::kInOrder);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    EXPECT_EQ(p.bin_of[i], static_cast<int>(i % 64)) << "item " << i;
  }
}

TEST(Partition, FfdRejectsOversizedAndPacksDecreasing) {
  // FFD sorts descending: 0.9 opens bin 0, 0.8 bin 1, 0.3 backfills bin 0
  // (1.2 <= 1.3), the two 0.2s no longer fit there and land in bin 1; the
  // oversized 1.5 is rejected (bin -1).
  const Partition p = partition_items({0.2, 1.5, 0.8, 0.9, 0.2, 0.3}, 2,
                                      PartitionPolicy::kFirstFitDecreasing, 1.3);
  EXPECT_EQ(p.bin_of[1], -1);
  EXPECT_EQ(p.bin_of[3], 0);
  EXPECT_EQ(p.bin_of[2], 1);
  EXPECT_EQ(p.bin_of[5], 0);
  EXPECT_EQ(p.bin_of[0], 1);
  EXPECT_EQ(p.bin_of[4], 1);
  EXPECT_DOUBLE_EQ(p.loads[0], 1.2);
  EXPECT_DOUBLE_EQ(p.loads[1], 1.2);
}

TEST(Partition, RejectsBadArguments) {
  EXPECT_THROW(partition_items({1.0}, 0, PartitionPolicy::kInOrder), Error);
  EXPECT_THROW(partition_items({-1.0}, 1, PartitionPolicy::kInOrder), Error);
}

TEST(Partition, EmptyInputYieldsEmptyBins) {
  const Partition p = partition_items({}, 2, PartitionPolicy::kLargestFirst);
  EXPECT_TRUE(p.bin_of.empty());
  EXPECT_DOUBLE_EQ(p.max_load(), 0.0);
}

}  // namespace
}  // namespace retask
