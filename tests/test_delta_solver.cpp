// DeltaSolver: the serve-mode incremental exact solver. The contract under
// test is strict bit-identity with cold ExactDpSolver solves over the same
// resident set after every mutation — admits (one relaxation row), removals
// and reprices (checkpointed replay), and the cold-fall path (change inside
// the first checkpoint stride).
#include "retask/serve/delta_solver.hpp"

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "retask/batch/lockstep.hpp"
#include "retask/common/error.hpp"
#include "retask/common/rng.hpp"
#include "retask/core/exact_dp.hpp"
#include "retask/power/polynomial_power.hpp"
#include "retask/task/generator.hpp"

namespace retask {
namespace {

EnergyCurve xscale_curve() {
  return EnergyCurve(PolynomialPowerModel::xscale(), 1.0, IdleDiscipline::kDormantEnable);
}

constexpr double kWpc = 1.0 / 200.0;  // 200 cycles fit at top speed

void expect_matches_cold(const DeltaSolver& delta, const char* where) {
  const RejectionSolution cold = ExactDpSolver().solve(delta.make_problem());
  const RejectionSolution& live = delta.solution();
  EXPECT_EQ(live.accepted, cold.accepted) << where;
  EXPECT_EQ(live.energy, cold.energy) << where;
  EXPECT_EQ(live.penalty, cold.penalty) << where;
}

std::vector<FrameTask> mixed_tasks() {
  // Loads past capacity so some admissions force rejections/evictions.
  return {{1, 80, 0.6}, {2, 120, 1.5}, {3, 40, 0.2}, {4, 90, 2.0},
          {5, 60, 0.4}, {6, 150, 3.0}, {7, 30, 0.1}, {8, 70, 0.9}};
}

TEST(DeltaSolver, AdmitMatchesColdSolveStepByStep) {
  DeltaSolver delta(xscale_curve(), kWpc);
  for (const FrameTask& task : mixed_tasks()) {
    const RejectionSolution& live = delta.admit(task);
    EXPECT_EQ(live.accepted.size(), delta.size());
    expect_matches_cold(delta, "admit");
  }
  EXPECT_EQ(delta.delta_hits(), mixed_tasks().size());
  EXPECT_EQ(delta.cold_falls(), 0u);
}

TEST(DeltaSolver, RemoveMatchesColdSolveAtCheckpointBoundaries) {
  DeltaSolver::Config config;
  config.checkpoint_stride = 4;
  // Removal indices straddling the stride: before the first checkpoint
  // (cold fall), exactly at one, and between two.
  for (const int victim : {1, 4, 5, 8}) {
    DeltaSolver delta(xscale_curve(), kWpc, config);
    for (const FrameTask& task : mixed_tasks()) delta.admit(task);
    delta.remove(victim);
    EXPECT_FALSE(delta.contains(victim));
    expect_matches_cold(delta, "remove");
  }
}

TEST(DeltaSolver, RepriceMatchesColdSolve) {
  DeltaSolver::Config config;
  config.checkpoint_stride = 4;
  DeltaSolver delta(xscale_curve(), kWpc, config);
  for (const FrameTask& task : mixed_tasks()) delta.admit(task);
  // Cheap -> expensive flips the verdict for a previously rejected task.
  delta.reprice(6, 50.0);
  expect_matches_cold(delta, "reprice up");
  EXPECT_TRUE(delta.solution().accepted[delta.index_of(6)]);
  delta.reprice(6, 1e-3);
  expect_matches_cold(delta, "reprice down");
}

TEST(DeltaSolver, ChangeInsideFirstStrideIsACountedColdFall) {
  DeltaSolver::Config config;
  config.checkpoint_stride = 4;
  DeltaSolver delta(xscale_curve(), kWpc, config);
  for (const FrameTask& task : mixed_tasks()) delta.admit(task);
  const std::uint64_t colds = delta.cold_falls();
  delta.remove(1);  // index 0: no checkpoint survives
  EXPECT_EQ(delta.cold_falls(), colds + 1);
  expect_matches_cold(delta, "cold fall");
}

TEST(DeltaSolver, DrainToEmptyAndRefill) {
  DeltaSolver delta(xscale_curve(), kWpc);
  for (const FrameTask& task : mixed_tasks()) delta.admit(task);
  for (const FrameTask& task : mixed_tasks()) {
    delta.remove(task.id);
    expect_matches_cold(delta, "drain");
  }
  EXPECT_EQ(delta.size(), 0u);
  EXPECT_TRUE(delta.solution().accepted.empty());
  EXPECT_EQ(delta.accepted_load(), 0);
  delta.admit({42, 100, 1.0});
  expect_matches_cold(delta, "refill");
  EXPECT_TRUE(delta.solution().accepted[0]);
}

TEST(DeltaSolver, InfeasibleTaskIsAlwaysRejected) {
  DeltaSolver delta(xscale_curve(), kWpc);
  // More cycles than the platform fits at top speed: must reject, and the
  // penalty must show up in the objective.
  const RejectionSolution& sol = delta.admit({1, 10000, 5.0});
  EXPECT_FALSE(sol.accepted[0]);
  EXPECT_EQ(sol.penalty, 5.0);
  expect_matches_cold(delta, "infeasible");
}

TEST(DeltaSolver, RejectsDuplicateAndUnknownIds) {
  DeltaSolver delta(xscale_curve(), kWpc);
  delta.admit({1, 50, 1.0});
  EXPECT_THROW(delta.admit({1, 60, 2.0}), Error);
  EXPECT_THROW(delta.remove(99), Error);
  EXPECT_THROW(delta.reprice(99, 1.0), Error);
  // Failed requests leave the resident set untouched.
  EXPECT_EQ(delta.size(), 1u);
  expect_matches_cold(delta, "after errors");
}

TEST(DeltaSolver, RandomWalkStaysBitIdenticalToColdSolves) {
  DeltaSolver::Config config;
  config.checkpoint_stride = 4;
  DeltaSolver delta(xscale_curve(), kWpc, config);
  Rng rng(2026);
  int next_id = 1;
  for (int step = 0; step < 200; ++step) {
    const std::int64_t op = rng.uniform_int(0, 2);
    if (op == 0 || delta.size() == 0) {
      delta.admit({next_id++, rng.uniform_int(10, 220), rng.uniform(0.05, 3.0)});
    } else if (op == 1) {
      const auto at = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(delta.size()) - 1));
      delta.remove(delta.resident()[at].id);
    } else {
      const auto at = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(delta.size()) - 1));
      delta.reprice(delta.resident()[at].id, rng.uniform(0.05, 3.0));
    }
    expect_matches_cold(delta, "walk");
    if (HasFailure()) break;
  }
  EXPECT_GT(delta.delta_hits(), 0u);
}

TEST(DeltaSolver, AdmitAllMatchesOneAtATimeAdmitsBitwise) {
  // The bulk seeding path of the multiprocessor local search: identical
  // final state to sequential admits, only the intermediate selects skipped.
  DeltaSolver::Config config;
  config.checkpoint_stride = 4;
  DeltaSolver bulk(xscale_curve(), kWpc, config);
  DeltaSolver stepwise(xscale_curve(), kWpc, config);
  bulk.admit_all(mixed_tasks());
  for (const FrameTask& task : mixed_tasks()) stepwise.admit(task);
  EXPECT_EQ(bulk.solution().accepted, stepwise.solution().accepted);
  EXPECT_EQ(bulk.solution().energy, stepwise.solution().energy);
  EXPECT_EQ(bulk.solution().penalty, stepwise.solution().penalty);
  EXPECT_EQ(bulk.accepted_load(), stepwise.accepted_load());
  expect_matches_cold(bulk, "admit_all");
  // Later mutations replay through the same checkpoints either way.
  bulk.remove(5);
  stepwise.remove(5);
  EXPECT_EQ(bulk.solution().accepted, stepwise.solution().accepted);
  expect_matches_cold(bulk, "remove after admit_all");
  EXPECT_THROW(bulk.admit_all({{20, 10, 0.1}, {20, 12, 0.2}}), Error);
}

/// Captures the lockstep lane tables over a 4-lane same-shape fleet built
/// from penalty-scaled variants of mixed_tasks(); `fleets[k]` holds lane k's
/// task vector, `solved[k]` its lockstep solution.
struct CapturedFleet {
  std::vector<std::vector<FrameTask>> fleets;
  std::vector<RejectionSolution> solved;
  LockstepTables tables;
};

CapturedFleet capture_fleet() {
  CapturedFleet out;
  const std::vector<FrameTask> base = mixed_tasks();
  std::vector<RejectionProblem> fleet;
  for (int v = 0; v < 4; ++v) {
    std::vector<FrameTask> tasks = base;
    for (FrameTask& task : tasks) task.penalty *= 1.0 + 0.25 * v;
    out.fleets.push_back(tasks);
    fleet.emplace_back(FrameTaskSet(std::move(tasks)), xscale_curve(), kWpc, 1);
  }
  std::vector<const RejectionProblem*> ptrs;
  for (const RejectionProblem& p : fleet) ptrs.push_back(&p);
  const ExactDpSolver exact;
  out.solved = BatchRejectionSolver(exact, BatchConfig{4}).solve_batch(ptrs, &out.tables);
  return out;
}

TEST(DeltaSolver, AdoptTableReproducesColdSeedingBitwise) {
  CapturedFleet captured = capture_fleet();
  ASSERT_EQ(captured.tables.exports.size(), 4u);
  for (std::size_t k = 0; k < captured.fleets.size(); ++k) {
    SCOPED_TRACE("lane " + std::to_string(k));
    ASSERT_FALSE(captured.tables.exports[k].value.empty());
    const int stride = captured.tables.exports[k].checkpoint_stride;
    DeltaSolver adopted(xscale_curve(), kWpc);
    const RejectionSolution& live =
        adopted.adopt_table(captured.fleets[k], std::move(captured.tables.exports[k]));
    // The adopted solution is the lane's lockstep solution ...
    EXPECT_EQ(live.accepted, captured.solved[k].accepted);
    EXPECT_EQ(live.energy, captured.solved[k].energy);
    EXPECT_EQ(live.penalty, captured.solved[k].penalty);
    // ... and exactly what cold seeding at the export's stride produces.
    DeltaSolver::Config cold_config;
    cold_config.checkpoint_stride = stride;
    DeltaSolver cold(xscale_curve(), kWpc, cold_config);
    cold.admit_all(captured.fleets[k]);
    EXPECT_EQ(live.accepted, cold.solution().accepted);
    EXPECT_EQ(live.energy, cold.solution().energy);
    EXPECT_EQ(live.penalty, cold.solution().penalty);
    EXPECT_EQ(adopted.accepted_load(), cold.accepted_load());
    expect_matches_cold(adopted, "adopt");
  }
}

TEST(DeltaSolver, AdoptTableStaysBitIdenticalAcrossLaterMutations) {
  // Every later request must replay through the adopted rows and
  // checkpoints exactly as through cold-seeded ones: drive the adopted
  // solver and a cold-seeded twin through the same remove / readmit /
  // reprice walk (including a first-stride cold fall) and compare bitwise
  // at every step.
  CapturedFleet captured = capture_fleet();
  for (std::size_t k = 0; k < captured.fleets.size(); ++k) {
    SCOPED_TRACE("lane " + std::to_string(k));
    ASSERT_FALSE(captured.tables.exports[k].value.empty());
    DeltaSolver::Config cold_config;
    cold_config.checkpoint_stride = captured.tables.exports[k].checkpoint_stride;
    DeltaSolver adopted(xscale_curve(), kWpc);
    DeltaSolver cold(xscale_curve(), kWpc, cold_config);
    adopted.adopt_table(captured.fleets[k], std::move(captured.tables.exports[k]));
    cold.admit_all(captured.fleets[k]);

    const auto agree = [&](const char* where) {
      EXPECT_EQ(adopted.solution().accepted, cold.solution().accepted) << where;
      EXPECT_EQ(adopted.solution().energy, cold.solution().energy) << where;
      EXPECT_EQ(adopted.solution().penalty, cold.solution().penalty) << where;
      expect_matches_cold(adopted, where);
    };
    // Checkpointed replay: removal past the first stride.
    adopted.remove(5);
    cold.remove(5);
    agree("remove mid");
    // Reprice a survivor (suffix replay through adopted choice rows).
    adopted.reprice(6, 40.0);
    cold.reprice(6, 40.0);
    agree("reprice");
    // First-stride change: the cold fall discards every adopted checkpoint.
    adopted.remove(captured.fleets[k].front().id);
    cold.remove(captured.fleets[k].front().id);
    agree("cold fall");
    // Growth past the adopted prefix lays down fresh checkpoints.
    adopted.admit({90, 55, 1.1});
    cold.admit({90, 55, 1.1});
    agree("admit after adopt");
  }
}

TEST(DeltaSolver, AdoptTableValidatesItsContract) {
  CapturedFleet captured = capture_fleet();
  ASSERT_FALSE(captured.tables.exports[0].value.empty());
  // Adopting into a non-empty solver throws; the failed request leaves the
  // resident set untouched.
  DeltaSolver busy(xscale_curve(), kWpc);
  busy.admit({1, 50, 1.0});
  DpTableExport table = std::move(captured.tables.exports[0]);
  EXPECT_THROW(busy.adopt_table(captured.fleets[0], std::move(table)), Error);
  EXPECT_EQ(busy.size(), 1u);
  expect_matches_cold(busy, "after rejected adopt");
  // An empty export (no capture) is not adoptable.
  DeltaSolver empty(xscale_curve(), kWpc);
  EXPECT_THROW(empty.adopt_table(captured.fleets[0], DpTableExport{}), Error);
  // A sparse checkpoint set (density violated) is rejected: replay indexing
  // would corrupt silently otherwise.
  DpTableExport sparse = std::move(captured.tables.exports[1]);
  ASSERT_FALSE(sparse.cp_values.empty());
  sparse.cp_values.pop_back();
  sparse.cp_reach.pop_back();
  EXPECT_THROW(empty.adopt_table(captured.fleets[1], std::move(sparse)), Error);
}

TEST(DeltaSolver, SharedMemoCannotChangeSolutions) {
  // Two solvers of the same platform sharing one memo (the per-PE setup of
  // the multiprocessor local search) must produce exactly the solutions of
  // two independent solvers.
  const auto memo = std::make_shared<EnergyMemo>();
  DeltaSolver::Config shared_config;
  shared_config.shared_memo = memo;
  DeltaSolver a_shared(xscale_curve(), kWpc, shared_config);
  DeltaSolver b_shared(xscale_curve(), kWpc, shared_config);
  DeltaSolver a_solo(xscale_curve(), kWpc);
  DeltaSolver b_solo(xscale_curve(), kWpc);
  const std::vector<FrameTask> tasks = mixed_tasks();
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    // Interleave so the second solver's loads mostly hit the first's memo.
    const RejectionSolution& shared =
        i % 2 == 0 ? a_shared.admit(tasks[i]) : b_shared.admit(tasks[i]);
    const RejectionSolution& solo = i % 2 == 0 ? a_solo.admit(tasks[i]) : b_solo.admit(tasks[i]);
    EXPECT_EQ(shared.accepted, solo.accepted) << "step " << i;
    EXPECT_EQ(shared.energy, solo.energy) << "step " << i;
    EXPECT_EQ(shared.penalty, solo.penalty) << "step " << i;
  }
  expect_matches_cold(a_shared, "shared memo a");
  expect_matches_cold(b_shared, "shared memo b");
}

TEST(DeltaSolver, AssignedSpeedMatchesPlanAndLoad) {
  DeltaSolver delta(xscale_curve(), kWpc);
  delta.admit({1, 100, 5.0});
  ASSERT_TRUE(delta.solution().accepted[0]);
  EXPECT_EQ(delta.accepted_load(), 100);
  const double speed = assigned_speed(delta.curve(), kWpc, delta.accepted_load());
  EXPECT_GT(speed, 0.0);
  EXPECT_LE(speed, delta.curve().model().max_speed() + 1e-12);
  EXPECT_EQ(assigned_speed(delta.curve(), kWpc, 0), 0.0);
}

}  // namespace
}  // namespace retask
