// Serve mode: the length-prefixed frame protocol, the request-line grammar
// over ServeSession, and the run_serve_loop pump (sync and async reply
// draining) end-to-end over string streams.
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "retask/common/error.hpp"
#include "retask/power/polynomial_power.hpp"
#include "retask/serve/protocol.hpp"
#include "retask/serve/server.hpp"

namespace retask {
namespace {

constexpr double kWpc = 1.0 / 200.0;  // 200 cycles fit at top speed

ServeSession make_session(int reply_precision = 17) {
  EnergyCurve curve(PolynomialPowerModel::xscale(), 1.0, IdleDiscipline::kDormantEnable);
  ServeOptions options;
  options.reply_precision = reply_precision;
  return ServeSession(std::move(curve), kWpc, options);
}

TEST(FrameProtocol, RoundTripsPayloads) {
  std::stringstream stream;
  const std::vector<std::string> payloads = {"", "admit 1 100 2.5", std::string(4096, 'x')};
  for (const std::string& payload : payloads) write_frame(stream, payload);
  std::string read;
  for (const std::string& expected : payloads) {
    ASSERT_TRUE(read_frame(stream, read));
    EXPECT_EQ(read, expected);
  }
  EXPECT_FALSE(read_frame(stream, read));  // clean end of stream
}

TEST(FrameProtocol, RejectsTruncatedAndOversizeFrames) {
  {
    std::stringstream stream;
    stream.write("\x05\x00", 2);  // half a header
    std::string read;
    EXPECT_THROW(read_frame(stream, read), Error);
  }
  {
    std::stringstream stream;
    stream.write("\x05\x00\x00\x00abc", 7);  // header promises 5, carries 3
    std::string read;
    EXPECT_THROW(read_frame(stream, read), Error);
  }
  {
    std::stringstream stream;
    stream.write("\xff\xff\xff\xff", 4);  // 4 GiB length field
    std::string read;
    EXPECT_THROW(read_frame(stream, read), Error);
  }
  {
    std::stringstream stream;
    EXPECT_THROW(write_frame(stream, std::string(kMaxFramePayload + 1, 'x')), Error);
  }
}

TEST(ServeSession, AnswersTheRequestGrammar) {
  ServeSession session = make_session();
  EXPECT_EQ(session.handle("ping"), "ok ping");

  const std::string admit(session.handle("admit 1 100 2.5"));
  EXPECT_TRUE(admit.rfind("ok admit id=1 verdict=accept accepted=1/1 load=100 ", 0) == 0)
      << admit;
  EXPECT_NE(admit.find(" path=delta"), std::string::npos) << admit;

  // Infeasible task: admitted into the resident set but rejected.
  const std::string reject(session.handle("admit 2 100000 0.5"));
  EXPECT_TRUE(reject.rfind("ok admit id=2 verdict=reject accepted=1/2 ", 0) == 0) << reject;

  const std::string query(session.handle("query"));
  EXPECT_TRUE(query.rfind("ok query resident=2 accepted=1/2 ", 0) == 0) << query;

  const std::string remove(session.handle("remove 2"));
  EXPECT_TRUE(remove.rfind("ok remove id=2 accepted=1/1 ", 0) == 0) << remove;

  const std::string reprice(session.handle("reprice 1 9.0"));
  EXPECT_TRUE(reprice.rfind("ok reprice id=1 verdict=accept ", 0) == 0) << reprice;

  const std::string stats(session.handle("stats"));
  EXPECT_TRUE(stats.rfind("ok stats requests=", 0) == 0) << stats;
  EXPECT_NE(stats.find(" resident=1 "), std::string::npos) << stats;

  EXPECT_FALSE(session.closed());
  EXPECT_EQ(session.handle("bye"), "ok bye");
  EXPECT_TRUE(session.closed());
}

TEST(ServeSession, MalformedRequestsAnswerErrAndLeaveStateUntouched) {
  ServeSession session = make_session();
  session.handle("admit 1 100 2.5");
  const std::vector<std::string> bad = {
      "",                       // empty frame
      "warble",                 // unknown command
      "admit",                  // missing fields
      "admit x 100 2.5",        // non-numeric id
      "admit 2 100 nan",        // non-finite penalty
      "admit 2 100 2.5 extra",  // trailing junk
      "admit 1 50 1.0",         // duplicate id (solver error)
      "remove 99",              // unknown id (solver error)
      "reprice 99 1.0",         // unknown id (solver error)
      "query extra",
  };
  for (const std::string& request : bad) {
    const std::string reply(session.handle(request));
    EXPECT_TRUE(reply.rfind("err ", 0) == 0) << request << " -> " << reply;
  }
  // The resident set survived every failure.
  const std::string query(session.handle("query"));
  EXPECT_TRUE(query.rfind("ok query resident=1 accepted=1/1 ", 0) == 0) << query;
}

TEST(ServeSession, ReplyPrecisionBoundsFloatFields) {
  ServeSession session = make_session(5);
  const std::string reply(session.handle("admit 1 123 0.125"));
  // Every float field (speed/energy/penalty/objective) prints with at most
  // 5 significant digits: no field may carry a 17-digit tail.
  std::istringstream fields(reply);
  std::string field;
  while (fields >> field) {
    const std::size_t eq = field.find('=');
    if (eq == std::string::npos) continue;
    const std::string value = field.substr(eq + 1);
    std::size_t digits = 0;
    bool significant = false;
    for (const char ch : value) {
      if (ch == 'e') break;  // exponent digits don't count toward precision
      if (ch >= '1' && ch <= '9') significant = true;
      if (ch >= '0' && ch <= '9' && significant) ++digits;
    }
    EXPECT_LE(digits, 5u) << field << " in " << reply;
  }
}

void exercise_loop(bool async) {
  std::stringstream in, out;
  write_frame(in, "admit 1 100 2.5");
  write_frame(in, "admit 2 50 0.75");
  write_frame(in, "query");
  write_frame(in, "bye");
  write_frame(in, "ping");  // beyond bye: must never be answered

  ServeSession session = make_session();
  ServeLoopOptions options;
  options.async_replies = async;
  const ServeLoopStats stats = run_serve_loop(in, out, session, options);
  EXPECT_EQ(stats.requests, 4u);
  EXPECT_GE(stats.batches, 1u);
  EXPECT_TRUE(session.closed());

  std::vector<std::string> replies;
  std::string payload;
  while (read_frame(out, payload)) replies.push_back(payload);
  ASSERT_EQ(replies.size(), 4u);  // in request order, nothing past bye
  EXPECT_TRUE(replies[0].rfind("ok admit id=1 ", 0) == 0) << replies[0];
  EXPECT_TRUE(replies[1].rfind("ok admit id=2 ", 0) == 0) << replies[1];
  EXPECT_TRUE(replies[2].rfind("ok query ", 0) == 0) << replies[2];
  EXPECT_EQ(replies[3], "ok bye");
  EXPECT_GT(stats.latency_percentile_ns(0.99), 0u);
}

TEST(ServeLoop, PumpsFramesWithInlineReplies) { exercise_loop(false); }
TEST(ServeLoop, PumpsFramesWithAsyncWriterThread) { exercise_loop(true); }

}  // namespace
}  // namespace retask
