// Tests for run-time slack reclamation: feasibility, the policy energy
// ordering, exactness at WCET, and speed monotonicity of the greedy policy.
#include "retask/sched/reclaim.hpp"

#include <gtest/gtest.h>

#include "retask/common/error.hpp"
#include "retask/power/polynomial_power.hpp"
#include "retask/power/table_power.hpp"
#include "test_util.hpp"

namespace retask {
namespace {

EnergyCurve curve() {
  return EnergyCurve(PolynomialPowerModel::xscale(), 1.0, IdleDiscipline::kDormantEnable);
}

TEST(Reclaim, ValidatesInputs) {
  const std::vector<FrameTask> tasks{{0, 50, 1.0}};
  EXPECT_THROW(simulate_frame_reclaim(tasks, {60}, 0.01, curve(), ReclaimPolicy::kStatic),
               Error);  // actual > WCET
  EXPECT_THROW(simulate_frame_reclaim(tasks, {}, 0.01, curve(), ReclaimPolicy::kStatic),
               Error);  // size mismatch
  EXPECT_THROW(simulate_frame_reclaim(tasks, {50}, 0.0, curve(), ReclaimPolicy::kStatic),
               Error);  // bad scale
  const EnergyCurve discrete(TablePowerModel::xscale5(), 1.0, IdleDiscipline::kDormantEnable);
  EXPECT_THROW(simulate_frame_reclaim(tasks, {50}, 0.01, discrete, ReclaimPolicy::kStatic),
               Error);  // discrete model unsupported
}

TEST(Reclaim, AllPoliciesCoincideAtWcet) {
  const std::vector<FrameTask> tasks{{0, 40, 1.0}, {1, 30, 1.0}, {2, 20, 1.0}};
  const std::vector<Cycles> actual{40, 30, 20};
  const EnergyCurve c = curve();
  const ReclaimResult s = simulate_frame_reclaim(tasks, actual, 0.01, c, ReclaimPolicy::kStatic);
  const ReclaimResult g = simulate_frame_reclaim(tasks, actual, 0.01, c, ReclaimPolicy::kGreedy);
  const ReclaimResult o =
      simulate_frame_reclaim(tasks, actual, 0.01, c, ReclaimPolicy::kClairvoyant);
  EXPECT_NEAR(s.energy, g.energy, 1e-9);
  EXPECT_NEAR(g.energy, o.energy, 1e-9);
  EXPECT_TRUE(s.deadline_met);
  // Full WCET at 0.9 work: speed = 0.9, energy = P(0.9) * 1.0.
  EXPECT_NEAR(s.energy, PolynomialPowerModel::xscale().power(0.9), 1e-6);
}

TEST(Reclaim, EnergyOrderingAcrossPolicies) {
  const EnergyCurve c = curve();
  Rng rng(3);
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const RejectionProblem instance = test::small_instance(seed, 8, 0.9);
    const std::vector<FrameTask>& tasks = instance.tasks().tasks();
    const std::vector<Cycles> actual = draw_actual_cycles(tasks, 0.3, 0.9, rng);
    const double kappa = instance.work_per_cycle();
    const ReclaimResult s =
        simulate_frame_reclaim(tasks, actual, kappa, c, ReclaimPolicy::kStatic);
    const ReclaimResult g =
        simulate_frame_reclaim(tasks, actual, kappa, c, ReclaimPolicy::kGreedy);
    const ReclaimResult o =
        simulate_frame_reclaim(tasks, actual, kappa, c, ReclaimPolicy::kClairvoyant);
    EXPECT_TRUE(s.deadline_met && g.deadline_met && o.deadline_met) << "seed " << seed;
    EXPECT_LE(o.energy, g.energy + 1e-9) << "seed " << seed;
    EXPECT_LE(g.energy, s.energy + 1e-9) << "seed " << seed;
  }
}

TEST(Reclaim, GreedySpeedsOnlyDecrease) {
  const std::vector<FrameTask> tasks{{0, 30, 1.0}, {1, 30, 1.0}, {2, 30, 1.0}};
  const std::vector<Cycles> actual{10, 10, 10};  // everything finishes early
  const ReclaimResult g =
      simulate_frame_reclaim(tasks, actual, 0.01, curve(), ReclaimPolicy::kGreedy);
  EXPECT_TRUE(g.deadline_met);
  EXPECT_LE(g.final_speed, g.initial_speed + 1e-12);
  EXPECT_LT(g.final_speed, g.initial_speed);  // strict here: lots of slack
}

TEST(Reclaim, SpeedsNeverBelowCriticalOnDormantEnable) {
  const std::vector<FrameTask> tasks{{0, 5, 1.0}};
  const std::vector<Cycles> actual{1};
  const ReclaimResult g =
      simulate_frame_reclaim(tasks, actual, 0.01, curve(), ReclaimPolicy::kGreedy);
  EXPECT_GE(g.final_speed, PolynomialPowerModel::xscale().analytic_critical_speed() - 1e-6);
}

TEST(Reclaim, EmptyAcceptSetIdles) {
  const ReclaimResult r = simulate_frame_reclaim({}, {}, 0.01, curve(), ReclaimPolicy::kGreedy);
  EXPECT_TRUE(r.deadline_met);
  EXPECT_NEAR(r.energy, 0.0, 1e-12);  // dormant-enable sleeps for free
}

TEST(Reclaim, DormantDisableChargesIdleTail) {
  const EnergyCurve c(PolynomialPowerModel::xscale(), 1.0, IdleDiscipline::kDormantDisable);
  const std::vector<FrameTask> tasks{{0, 50, 1.0}};
  const std::vector<Cycles> actual{25};
  const ReclaimResult r = simulate_frame_reclaim(tasks, actual, 0.01, c, ReclaimPolicy::kStatic);
  // Static speed 0.5, actual work 0.25 -> busy 0.5, idle 0.5 at 0.08 W.
  EXPECT_NEAR(r.completion, 0.5, 1e-9);
  EXPECT_NEAR(r.energy, PolynomialPowerModel::xscale().power(0.5) * 0.5 + 0.08 * 0.5, 1e-9);
}

TEST(Reclaim, DrawActualCyclesRespectsBounds) {
  const std::vector<FrameTask> tasks{{0, 100, 1.0}, {1, 7, 1.0}};
  Rng rng(9);
  for (int rep = 0; rep < 50; ++rep) {
    const auto actual = draw_actual_cycles(tasks, 0.4, 0.8, rng);
    EXPECT_GE(actual[0], 40);
    EXPECT_LE(actual[0], 80);
    EXPECT_GE(actual[1], 1);
    EXPECT_LE(actual[1], 7);
  }
  EXPECT_THROW(draw_actual_cycles(tasks, 0.0, 0.5, rng), Error);
  EXPECT_THROW(draw_actual_cycles(tasks, 0.6, 0.5, rng), Error);
  EXPECT_THROW(draw_actual_cycles(tasks, 0.5, 1.5, rng), Error);
}

}  // namespace
}  // namespace retask
