// Tests for the wavefront-tiled DP fill (batch/wavefront.hpp): the tiled
// fill must reproduce the serial in-place relaxation bit for bit — value row
// and choice bits — on table widths straddling the 64-cell word boundary, at
// any job count; whole solvers must be identical with the mode off and
// forced; and the gate must decline the configurations the serial loop
// serves better.
#include "retask/batch/wavefront.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <limits>
#include <vector>

#include "retask/cache/scratch.hpp"
#include "retask/common/bit_matrix.hpp"
#include "retask/common/rng.hpp"
#include "retask/core/budgeted.hpp"
#include "retask/core/exact_dp.hpp"
#include "retask/simd/kernels.hpp"
#include "test_util.hpp"

namespace retask {
namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

/// Restores the process-wide wavefront mode on scope exit.
class ScopedMode {
 public:
  explicit ScopedMode(WavefrontMode mode) : before_(wavefront_mode()) {
    set_wavefront_mode(mode);
  }
  ~ScopedMode() { set_wavefront_mode(before_); }
  ScopedMode(const ScopedMode&) = delete;
  ScopedMode& operator=(const ScopedMode&) = delete;

 private:
  WavefrontMode before_;
};

/// The serial fill the tiled one must reproduce: in-place descending
/// relaxation with the reachability bound and the cycles > cap prune
/// (mirrors core/exact_dp.cpp's fill_table fallback loop).
void serial_fill(const FrameTaskSet& tasks, Cycles cap, DpScratch& scratch) {
  const std::size_t n = tasks.size();
  const auto width = static_cast<std::size_t>(cap) + 1;
  scratch.value.assign(width, kNegInf);
  scratch.value[0] = 0.0;
  scratch.take.reset(n, width);
  std::size_t reachable = 0;
  const simd::KernelTable& kernels = simd::kernels();
  for (std::size_t i = 0; i < n; ++i) {
    const FrameTask& task = tasks[i];
    if (task.cycles > cap) continue;
    const auto ci = static_cast<std::size_t>(task.cycles);
    const std::size_t top = std::min(width - 1, reachable + ci);
    kernels.relax_desc_f64(scratch.value.data(), scratch.take.row_words(i), ci, ci, top,
                           task.penalty);
    reachable = top;
  }
}

/// A task set whose subset sums populate most of a cap-wide table, plus one
/// task that cannot fit (the prune path must also be identical).
FrameTaskSet dense_tasks(std::uint64_t seed, Cycles cap, int count = 12) {
  Rng rng(seed);
  std::vector<FrameTask> tasks;
  tasks.reserve(static_cast<std::size_t>(count) + 1);
  for (int i = 0; i < count; ++i) {
    tasks.push_back({i, rng.uniform_int(1, std::max<Cycles>(1, cap / 3)),
                     rng.uniform(0.1, 5.0)});
  }
  tasks.push_back({count, cap + 5, 1.0});  // pruned: cycles > cap
  return FrameTaskSet(std::move(tasks));
}

void expect_scratch_identical(const DpScratch& got, const DpScratch& want, std::size_t n,
                              std::size_t width) {
  ASSERT_EQ(got.value.size(), want.value.size());
  for (std::size_t w = 0; w < width; ++w) {
    ASSERT_EQ(std::bit_cast<std::uint64_t>(got.value[w]),
              std::bit_cast<std::uint64_t>(want.value[w]))
        << "value row cell " << w;
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t w = 0; w < width; ++w) {
      ASSERT_EQ(got.take.test(i, w), want.take.test(i, w)) << "take bit (" << i << ", " << w
                                                           << ")";
    }
  }
}

TEST(Wavefront, TiledFillMatchesSerialOnWordEdgeWidths) {
  ScopedMode mode(WavefrontMode::kAuto);
  // Widths 63/64/65 straddle the choice-word boundary with tile_width=64:
  // below one tile, exactly one tile, one tile plus a 1-cell tail.
  for (const Cycles cap : {Cycles{62}, Cycles{63}, Cycles{64}, Cycles{130}, Cycles{1000}}) {
    SCOPED_TRACE("cap " + std::to_string(cap));
    const FrameTaskSet tasks = dense_tasks(7000 + static_cast<std::uint64_t>(cap), cap);
    DpScratch want;
    serial_fill(tasks, cap, want);
    WavefrontOptions options;
    options.tile_width = 64;
    options.jobs = 4;
    options.force = true;
    DpScratch got;
    ASSERT_TRUE(wavefront_fill(tasks, cap, got, options));
    expect_scratch_identical(got, want, tasks.size(), static_cast<std::size_t>(cap) + 1);
  }
}

TEST(Wavefront, TiledFillIsJobCountInvariant) {
  ScopedMode mode(WavefrontMode::kAuto);
  const Cycles cap = 257;
  const FrameTaskSet tasks = dense_tasks(8100, cap, 16);
  WavefrontOptions options;
  options.tile_width = 64;
  options.force = true;
  options.jobs = 1;
  DpScratch one;
  ASSERT_TRUE(wavefront_fill(tasks, cap, one, options));
  options.jobs = 8;
  DpScratch eight;
  ASSERT_TRUE(wavefront_fill(tasks, cap, eight, options));
  expect_scratch_identical(eight, one, tasks.size(), static_cast<std::size_t>(cap) + 1);
}

TEST(Wavefront, GateDeclinesOffModeSmallTablesAndBadTiles) {
  const Cycles cap = 64;
  const FrameTaskSet tasks = dense_tasks(8200, cap);
  DpScratch scratch;
  {
    // kOff wins over force: the kill switch must always work.
    ScopedMode mode(WavefrontMode::kOff);
    WavefrontOptions options;
    options.force = true;
    EXPECT_FALSE(wavefront_fill(tasks, cap, scratch, options));
  }
  {
    // kAuto without force: a 65-cell table is far below the size gate.
    ScopedMode mode(WavefrontMode::kAuto);
    EXPECT_FALSE(wavefront_fill(tasks, cap, scratch));
  }
}

TEST(Wavefront, ExactDpIsIdenticalOffVersusForced) {
  const ExactDpSolver solver;
  for (const std::uint64_t seed : {11u, 12u, 13u}) {
    const RejectionProblem problem = test::small_instance(seed, 14, 1.6);
    RejectionSolution off;
    RejectionSolution forced;
    {
      ScopedMode mode(WavefrontMode::kOff);
      off = solver.solve(problem);
    }
    {
      ScopedMode mode(WavefrontMode::kForce);
      forced = solver.solve(problem);
    }
    EXPECT_EQ(off.accepted, forced.accepted);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(off.energy),
              std::bit_cast<std::uint64_t>(forced.energy));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(off.penalty),
              std::bit_cast<std::uint64_t>(forced.penalty));
  }
}

TEST(Wavefront, BudgetedSweepIsIdenticalOffVersusForced) {
  const RejectionProblem base = test::small_instance(21, 12, 1.5);
  const BudgetedProblem problem{base.tasks(), base.curve(), base.work_per_cycle(), 1.0};
  const double full = base.energy_of_cycles(base.cycle_capacity());
  const std::vector<double> budgets{0.25 * full, 0.5 * full, 0.9 * full};
  std::vector<BudgetedSolution> off;
  std::vector<BudgetedSolution> forced;
  {
    ScopedMode mode(WavefrontMode::kOff);
    off = solve_budgeted_dp_sweep(problem, budgets);
  }
  {
    ScopedMode mode(WavefrontMode::kForce);
    forced = solve_budgeted_dp_sweep(problem, budgets);
  }
  ASSERT_EQ(off.size(), forced.size());
  for (std::size_t b = 0; b < off.size(); ++b) {
    SCOPED_TRACE("budget " + std::to_string(budgets[b]));
    EXPECT_EQ(off[b].accepted, forced[b].accepted);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(off[b].value),
              std::bit_cast<std::uint64_t>(forced[b].value));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(off[b].energy),
              std::bit_cast<std::uint64_t>(forced[b].energy));
  }
}

}  // namespace
}  // namespace retask
