// Unit tests for the results-table emitter.
#include "retask/common/table.hpp"

#include <sstream>

#include <gtest/gtest.h>

#include "retask/common/error.hpp"

namespace retask {
namespace {

TEST(Table, RejectsEmptyColumnsAndMismatchedRows) {
  EXPECT_THROW(Table("t", {}), Error);
  Table t("t", {"a", "b"});
  EXPECT_THROW(t.add_row({std::string("only-one")}), Error);
}

TEST(Table, CountsRows) {
  Table t("t", {"a"});
  EXPECT_EQ(t.row_count(), 0u);
  t.add_row({std::string("x")});
  t.add_row(std::vector<double>{1.5});
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, PrettyOutputContainsTitleHeaderAndCells) {
  Table t("My Figure", {"load", "ratio"});
  t.add_row(std::vector<double>{0.5, 1.25});
  std::ostringstream os;
  t.write_pretty(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("My Figure"), std::string::npos);
  EXPECT_NE(out.find("load"), std::string::npos);
  EXPECT_NE(out.find("ratio"), std::string::npos);
  EXPECT_NE(out.find("1.25"), std::string::npos);
}

TEST(Table, CsvOutputIsParseable) {
  Table t("fig", {"x", "y"});
  t.add_row({std::string("a"), std::string("b")});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "x,y\na,b\n");
}

TEST(Table, CsvEscapesSpecialCharacters) {
  Table t("fig", {"name"});
  t.add_row({std::string("has,comma")});
  t.add_row({std::string("has\"quote")});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "name\n\"has,comma\"\n\"has\"\"quote\"\n");
}

TEST(FormatDouble, RespectsPrecision) {
  EXPECT_EQ(format_double(1.0 / 3.0, 3), "0.333");
  EXPECT_EQ(format_double(2.0, 6), "2");
}

TEST(Table, PrettyColumnsAlignAcrossMixedWidthCells) {
  Table t("align", {"x", "a-much-wider-column"});
  t.add_row({std::string("wider-than-header-x"), std::string("s")});
  t.add_row({std::string("y"), std::string("zz")});
  std::ostringstream os;
  t.write_pretty(os);

  // Every rendered line between the rules has the same length: each column
  // is padded to the widest cell (here the first data cell beats its
  // header).
  std::istringstream lines(os.str());
  std::string line;
  std::size_t expected = 0;
  ASSERT_TRUE(std::getline(lines, line));  // title line, not aligned
  while (std::getline(lines, line)) {
    if (expected == 0) expected = line.size();
    EXPECT_EQ(line.size(), expected) << "line '" << line << "'";
  }
  // Cells sit between "| " separators in column order.
  const std::string out = os.str();
  EXPECT_LT(out.find("| x "), out.find("| wider-than-header-x"));
}

TEST(Table, CsvEscapesNewlinesAndLeavesPlainCellsAlone) {
  Table t("fig", {"name", "plain"});
  t.add_row({std::string("line1\nline2"), std::string("simple")});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "name,plain\n\"line1\nline2\",simple\n");
}

TEST(Table, CsvEscapesCellsThatAreOnlyAQuote) {
  Table t("fig", {"c"});
  t.add_row({std::string("\"")});
  t.add_row({std::string("")});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "c\n\"\"\"\"\n\n");
}

TEST(Table, PrettyHandlesEmptyTable) {
  Table t("empty", {"only"});
  std::ostringstream os;
  t.write_pretty(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("empty"), std::string::npos);
  EXPECT_NE(out.find("only"), std::string::npos);
}

}  // namespace
}  // namespace retask
