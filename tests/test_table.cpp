// Unit tests for the results-table emitter.
#include "retask/common/table.hpp"

#include <sstream>

#include <gtest/gtest.h>

#include "retask/common/error.hpp"

namespace retask {
namespace {

TEST(Table, RejectsEmptyColumnsAndMismatchedRows) {
  EXPECT_THROW(Table("t", {}), Error);
  Table t("t", {"a", "b"});
  EXPECT_THROW(t.add_row({std::string("only-one")}), Error);
}

TEST(Table, CountsRows) {
  Table t("t", {"a"});
  EXPECT_EQ(t.row_count(), 0u);
  t.add_row({std::string("x")});
  t.add_row(std::vector<double>{1.5});
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, PrettyOutputContainsTitleHeaderAndCells) {
  Table t("My Figure", {"load", "ratio"});
  t.add_row(std::vector<double>{0.5, 1.25});
  std::ostringstream os;
  t.write_pretty(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("My Figure"), std::string::npos);
  EXPECT_NE(out.find("load"), std::string::npos);
  EXPECT_NE(out.find("ratio"), std::string::npos);
  EXPECT_NE(out.find("1.25"), std::string::npos);
}

TEST(Table, CsvOutputIsParseable) {
  Table t("fig", {"x", "y"});
  t.add_row({std::string("a"), std::string("b")});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "x,y\na,b\n");
}

TEST(Table, CsvEscapesSpecialCharacters) {
  Table t("fig", {"name"});
  t.add_row({std::string("has,comma")});
  t.add_row({std::string("has\"quote")});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "name\n\"has,comma\"\n\"has\"\"quote\"\n");
}

TEST(FormatDouble, RespectsPrecision) {
  EXPECT_EQ(format_double(1.0 / 3.0, 3), "0.333");
  EXPECT_EQ(format_double(2.0, 6), "2");
}

}  // namespace
}  // namespace retask
