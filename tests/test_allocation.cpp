// Tests for the allocation-cost synthesis: lower bound validity, budget
// compliance, the First-Fit vs. balanced comparison, and edge cases.
#include "retask/core/allocation.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "retask/common/error.hpp"
#include "retask/power/polynomial_power.hpp"
#include "retask/task/generator.hpp"

namespace retask {
namespace {

AllocationProblem make_problem(std::vector<FrameTask> tasks, double budget,
                               IdleDiscipline idle = IdleDiscipline::kDormantEnable) {
  AllocationProblem problem{FrameTaskSet(std::move(tasks)),
                            EnergyCurve(PolynomialPowerModel::xscale(), 1.0, idle),
                            0.01, budget, 1.0};
  return problem;
}

AllocationProblem random_problem(std::uint64_t seed, int n, double total_load, double budget) {
  FrameWorkloadConfig config;
  config.task_count = n;
  config.target_load = total_load;
  config.resolution = 400.0;
  Rng rng(seed);
  AllocationProblem problem{generate_frame_tasks(config, rng),
                            EnergyCurve(PolynomialPowerModel::xscale(), 1.0,
                                        IdleDiscipline::kDormantEnable),
                            1.0 / 400.0, budget, 1.0};
  return problem;
}

TEST(Allocation, ValidatesInstances) {
  EXPECT_THROW(validate(make_problem({{0, 50, 0.0}}, 0.0)), Error);          // no budget
  EXPECT_THROW(validate(make_problem({{0, 150, 0.0}}, 1.0)), Error);         // oversized task
  EXPECT_NO_THROW(validate(make_problem({{0, 50, 0.0}}, 1.0)));
}

TEST(Allocation, BalancedEnergyMatchesClosedForm) {
  // Two processors, W = 1.2 work total: share 0.6 each, E = P(0.6) each
  // (above the critical speed).
  const AllocationProblem p = make_problem({{0, 60, 0.0}, {1, 60, 0.0}}, 10.0);
  const double p06 = 0.08 + 1.52 * 0.216;
  EXPECT_NEAR(balanced_energy(p, 2), 2.0 * p06, 1e-9);
  EXPECT_TRUE(std::isinf(balanced_energy(p, 1)));  // 1.2 > capacity 1
}

TEST(Allocation, LowerBoundRespectsTimingAndEnergy) {
  // Timing floor: 1.8 total work needs 2 processors regardless of budget.
  const AllocationProblem roomy = make_problem({{0, 90, 0.0}, {1, 90, 0.0}}, 100.0);
  EXPECT_EQ(allocation_lower_bound(roomy), 2);
  // Energy floor: 2 procs at share 0.9 cost 2*P(0.9) ~ 2.38; a budget of 1.5
  // forces more processors even though timing allows 2.
  const AllocationProblem tight = make_problem({{0, 90, 0.0}, {1, 90, 0.0}}, 1.5);
  EXPECT_GT(allocation_lower_bound(tight), 2);
}

TEST(Allocation, ImpossibleBudgetThrows) {
  // Below the minimum energy (everything at the critical speed) no count works.
  const PolynomialPowerModel m = PolynomialPowerModel::xscale();
  const double e_min_per_work = m.energy_per_cycle(m.analytic_critical_speed());
  const AllocationProblem p = make_problem({{0, 90, 0.0}}, 0.5 * e_min_per_work * 0.9);
  EXPECT_THROW(allocation_lower_bound(p), Error);
}

TEST(Allocation, AllocatorsMeetBudgetAndValidate) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const AllocationProblem p = random_problem(seed, 12, 3.0, 2.2);
    const AllocationResult ff = allocate_first_fit(p);
    const AllocationResult bal = allocate_balanced(p);
    check_allocation(p, ff);
    check_allocation(p, bal);
    EXPECT_GE(ff.processors, allocation_lower_bound(p));
    EXPECT_GE(bal.processors, allocation_lower_bound(p));
  }
}

TEST(Allocation, BalancedNeverNeedsMoreProcessorsOnAverage) {
  double ff_total = 0.0;
  double bal_total = 0.0;
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    // Tight budget: 1.25x the balanced optimum at the timing floor.
    AllocationProblem p = random_problem(seed, 14, 2.6, 1.0);
    const int m_timing = 3;
    p.energy_budget = 1.25 * balanced_energy(p, m_timing);
    ff_total += allocate_first_fit(p).cost;
    bal_total += allocate_balanced(p).cost;
  }
  EXPECT_LE(bal_total, ff_total + 1e-9);
}

TEST(Allocation, GenerousBudgetHitsTimingFloor) {
  const AllocationProblem p = random_problem(3, 10, 2.4, 100.0);
  const AllocationResult bal = allocate_balanced(p);
  EXPECT_EQ(bal.processors, 3);  // ceil(2.4)
}

TEST(Allocation, TighterBudgetBuysMoreProcessors) {
  AllocationProblem p = random_problem(5, 12, 2.5, 0.0);
  p.energy_budget = 100.0;
  const int roomy = allocate_balanced(p).processors;
  p.energy_budget = 1.02 * balanced_energy(p, roomy + 2);
  const int tight = allocate_balanced(p).processors;
  EXPECT_GT(tight, roomy);
}

TEST(Allocation, CheckDetectsTampering) {
  const AllocationProblem p = random_problem(7, 8, 1.6, 5.0);
  AllocationResult r = allocate_balanced(p);
  EXPECT_NO_THROW(check_allocation(p, r));
  r.energy *= 0.5;
  EXPECT_THROW(check_allocation(p, r), Error);
}

}  // namespace
}  // namespace retask
