// Tests for the differential verification subsystem: the property registry
// on clean and deliberately broken solvers, the fuzz driver's determinism,
// drop-one-task minimization, and the counterexample dump/replay loop.
#include "retask/verify/differential.hpp"

#include <filesystem>
#include <sstream>

#include <gtest/gtest.h>

#include "retask/common/error.hpp"
#include "retask/core/algorithm_registry.hpp"
#include "retask/io/counterexample.hpp"
#include "retask/io/task_io.hpp"
#include "retask/verify/properties.hpp"

namespace retask {
namespace {

std::vector<SolverUnderTest> suite_with_broken(int processor_count) {
  std::vector<SolverUnderTest> suite = default_suite(processor_count);
  if (processor_count == 1) suite.push_back(broken_capacity_solver());
  return suite;
}

TEST(Properties, DefaultSuiteIsCleanAcrossScenarios) {
  for (const char* model : {"xscale", "cubic", "table5"}) {
    for (const int processors : {1, 2}) {
      InstanceSpec spec;
      spec.model = model;
      spec.idle = IdleDiscipline::kDormantDisable;
      spec.processor_count = processors;
      spec.task_count = 7;
      spec.load = 1.3 * processors;
      spec.resolution = 150.0;
      spec.seed = 42;
      const RejectionProblem problem = build_instance(spec);
      const auto violations = check_instance(problem, default_suite(processors));
      for (const auto& violation : violations) {
        ADD_FAILURE() << model << "/M=" << processors << ": " << to_string(violation);
      }
    }
  }
}

TEST(Properties, BrokenSolverCaughtOnExactFillInstance) {
  // capacity = 100 cycles; the optimum accepts 60 + 40 = 100 exactly, so an
  // off-by-one capacity (99) must reject a task and lose its big penalty.
  InstanceSpec spec;
  spec.model = "xscale";
  spec.resolution = 100.0;
  const FrameTaskSet tasks({{0, 60, 10.0}, {1, 40, 10.0}});
  const RejectionProblem problem = build_problem(spec, tasks);
  ASSERT_EQ(problem.cycle_capacity(), 100);

  EXPECT_TRUE(check_instance(problem, default_suite(1)).empty());
  const auto violations = check_instance(problem, suite_with_broken(1));
  ASSERT_FALSE(violations.empty());
  bool exact_match_hit = false;
  for (const auto& violation : violations) {
    exact_match_hit |=
        violation.property == "exact-match" && violation.solver == "broken-off-by-one";
  }
  EXPECT_TRUE(exact_match_hit) << to_string(violations.front());
}

TEST(Properties, StructuralViolationIsReported) {
  // A hand-forged solution whose energy field lies about the schedule.
  InstanceSpec spec;
  spec.resolution = 100.0;
  const FrameTaskSet tasks({{0, 50, 1.0}, {1, 30, 1.0}});
  const RejectionProblem problem = build_problem(spec, tasks);

  class LyingSolver final : public RejectionSolver {
   public:
    RejectionSolution solve(const RejectionProblem& p) const override {
      RejectionSolution solution = make_solution_on_one(p, {true, true});
      solution.energy *= 0.5;  // misreport
      return solution;
    }
    std::string name() const override { return "liar"; }
  };
  SolverUnderTest liar;
  liar.name = "liar";
  liar.solver = std::make_shared<LyingSolver>();
  const auto violations = check_instance(problem, {liar});
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].property, "structural");
  EXPECT_EQ(violations[0].solver, "liar");
}

TEST(DifferentialFuzz, DefaultSuiteSweepIsClean) {
  FuzzOptions options;
  options.seed = 11;
  options.rounds = 60;
  options.max_n = 9;
  const FuzzReport report = run_differential_fuzz(options);
  EXPECT_EQ(report.rounds, 60);
  EXPECT_GT(report.solver_runs, 60);
  for (const auto& counterexample : report.counterexamples) {
    for (const auto& violation : counterexample.violations) {
      ADD_FAILURE() << "round " << counterexample.round << ": " << to_string(violation);
    }
  }
}

TEST(DifferentialFuzz, CatchesInjectedBrokenSolverWithMinimalReplayableDump) {
  FuzzOptions options;
  options.seed = 3;
  options.rounds = 50;
  options.max_n = 10;
  const FuzzReport report = run_differential_fuzz(options, suite_with_broken);
  ASSERT_FALSE(report.ok());

  const FuzzCounterexample& counterexample = report.counterexamples.front();
  ASSERT_FALSE(counterexample.violations.empty());
  EXPECT_GE(counterexample.tasks.size(), 1u);

  // 1-minimality: the minimized instance still fails, and dropping any
  // single further task makes every property pass.
  const auto fails = [&](const FrameTaskSet& tasks) {
    return !check_instance(build_problem(counterexample.spec, tasks),
                           suite_with_broken(counterexample.spec.processor_count))
                .empty();
  };
  ASSERT_TRUE(fails(counterexample.tasks));
  for (std::size_t drop = 0; drop < counterexample.tasks.size(); ++drop) {
    std::vector<FrameTask> reduced;
    for (std::size_t i = 0; i < counterexample.tasks.size(); ++i) {
      if (i != drop) reduced.push_back(counterexample.tasks[i]);
    }
    EXPECT_FALSE(fails(FrameTaskSet(std::move(reduced)))) << "not 1-minimal at " << drop;
  }

  // Dump -> parse -> replay reproduces the violation with the broken suite
  // and is clean on the stock suite (the bug is in the solver, not the data).
  std::stringstream buffer;
  write_counterexample(buffer, to_counterexample_file(counterexample));
  const ReplayCase replay = from_counterexample_file(read_counterexample(buffer));
  EXPECT_EQ(replay.tasks.size(), counterexample.tasks.size());
  EXPECT_EQ(replay.spec.model, counterexample.spec.model);
  EXPECT_FALSE(check_replay(replay, suite_with_broken).empty());
  EXPECT_TRUE(check_replay(replay).empty());
}

TEST(DifferentialFuzz, ReportIsIdenticalAtAnyJobCount) {
  FuzzOptions options;
  options.seed = 3;
  options.rounds = 40;
  options.max_n = 9;
  options.jobs = 1;
  const FuzzReport sequential = run_differential_fuzz(options, suite_with_broken);
  options.jobs = 8;
  const FuzzReport parallel = run_differential_fuzz(options, suite_with_broken);
  ASSERT_EQ(sequential.counterexamples.size(), parallel.counterexamples.size());
  EXPECT_EQ(sequential.solver_runs, parallel.solver_runs);
  for (std::size_t i = 0; i < sequential.counterexamples.size(); ++i) {
    EXPECT_EQ(sequential.counterexamples[i].round, parallel.counterexamples[i].round);
    EXPECT_EQ(sequential.counterexamples[i].tasks.size(),
              parallel.counterexamples[i].tasks.size());
  }
}

TEST(CounterexampleIo, MetadataRoundTripsThroughPlainTaskCsv) {
  CounterexampleFile file;
  file.meta = {{"model", "table5"}, {"idle", "disable"}, {"note", "value with = sign"}};
  file.tasks = FrameTaskSet({{0, 40, 0.5}, {1, 35, 1.25}});
  std::stringstream buffer;
  write_counterexample(buffer, file);

  const CounterexampleFile parsed = read_counterexample(buffer);
  ASSERT_EQ(parsed.meta.size(), 3u);
  EXPECT_EQ(*parsed.find("model"), "table5");
  EXPECT_EQ(*parsed.find("note"), "value with = sign");
  EXPECT_EQ(parsed.find("missing"), nullptr);
  ASSERT_EQ(parsed.tasks.size(), 2u);
  EXPECT_EQ(parsed.tasks[1].cycles, 35);

  // The same bytes are a plain task CSV: "#@" lines are ordinary comments.
  std::stringstream again;
  write_counterexample(again, file);
  EXPECT_EQ(read_frame_tasks(again).size(), 2u);
}

TEST(CounterexampleIo, FileWriterCreatesMissingOutputDirectories) {
  // Regression: `retask_fuzz --out runs/today/ce` used to fail at dump time
  // when the directory did not exist yet — after the whole sweep had run.
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "retask_cex_out_test";
  fs::remove_all(dir);
  const fs::path path = dir / "nested" / "deeper" / "cex_0.csv";

  CounterexampleFile file;
  file.meta = {{"model", "xscale"}};
  file.tasks = FrameTaskSet({{0, 40, 0.5}});
  write_counterexample_file(path.string(), file);
  ASSERT_TRUE(fs::exists(path));
  const CounterexampleFile parsed = read_counterexample_file(path.string());
  EXPECT_EQ(*parsed.find("model"), "xscale");
  ASSERT_EQ(parsed.tasks.size(), 1u);

  // A bare filename (empty parent path) still works.
  fs::remove_all(dir);
}

TEST(CounterexampleIo, RejectsMalformedMetadata) {
  std::istringstream bad("#@ no-equals-sign\nid,cycles,penalty\n0,10,1\n");
  EXPECT_THROW(read_counterexample(bad), Error);
  CounterexampleFile file;
  file.meta = {{"bad key", "spaces\nand newline"}};
  std::ostringstream out;
  EXPECT_THROW(write_counterexample(out, file), Error);
}

TEST(Registry, KnownSolverNamesAllConstruct) {
  for (const std::string& name : known_solver_names()) {
    EXPECT_NO_THROW(make_solver(name)) << name;
  }
  EXPECT_TRUE(is_multiprocessor_solver("mp-opt-exh"));
  EXPECT_TRUE(is_multiprocessor_solver("la-ltf-ff"));
  EXPECT_FALSE(is_multiprocessor_solver("opt-dp"));
  EXPECT_THROW(make_solver("fptas:inf"), Error);
  EXPECT_THROW(make_solver("fptas:nan"), Error);
}

}  // namespace
}  // namespace retask
