// Tests for the discrete frequency ladder: validation, two-speed split
// identities, closed-form emulation energy, dense-ladder convergence to the
// continuous model, and the single-level degenerate case against the
// fixed-speed frame simulator.
#include "retask/power/freq_ladder.hpp"

#include <gtest/gtest.h>

#include "retask/common/error.hpp"
#include "retask/power/polynomial_power.hpp"
#include "retask/power/table_power.hpp"
#include "retask/sched/frame_sim.hpp"
#include "retask/sched/speed_schedule.hpp"
#include "retask/sched/stochastic.hpp"

namespace retask {
namespace {

TEST(FreqLadder, ValidatesLevels) {
  EXPECT_THROW(FreqLadder({}), Error);
  EXPECT_THROW(FreqLadder({{0.0, 1.0}}), Error);                  // zero speed
  EXPECT_THROW(FreqLadder({{0.5, 0.0}}), Error);                  // zero power
  EXPECT_THROW(FreqLadder({{0.5, 1.0}, {0.5, 2.0}}), Error);      // duplicate speed
  EXPECT_THROW(FreqLadder({{0.5, 2.0}, {1.0, 1.0}}), Error);      // dominated level
  EXPECT_NO_THROW(FreqLadder({{1.0, 2.0}, {0.5, 1.0}}));          // sorted on construction
}

TEST(FreqLadder, FromModelSamplesTheCurve) {
  const PolynomialPowerModel model = PolynomialPowerModel::xscale();
  const FreqLadder ladder = FreqLadder::from_model(model, 5);
  ASSERT_EQ(ladder.size(), 5u);
  EXPECT_DOUBLE_EQ(ladder.min_speed(), 0.2);
  EXPECT_DOUBLE_EQ(ladder.max_speed(), 1.0);
  for (const LadderLevel& level : ladder.levels()) {
    EXPECT_DOUBLE_EQ(level.power, model.power(level.speed));
  }
  EXPECT_THROW(FreqLadder::from_model(model, 0), Error);
  EXPECT_THROW(FreqLadder::from_model(TablePowerModel::xscale5(), 5), Error);
}

TEST(FreqLadder, TwoSpeedSplitIsExact) {
  const FreqLadder ladder = FreqLadder::from_model(PolynomialPowerModel::xscale(), 4);
  // Between levels: shares sum to the duration and realize the work exactly.
  const double s = 0.6;  // between 0.5 and 0.75
  const FreqLadder::Split split = ladder.two_speed_split(s, 2.0);
  EXPECT_EQ(split.lo + 1, split.hi);
  EXPECT_NEAR(split.t_lo + split.t_hi, 2.0, 1e-12);
  const double work = split.t_lo * ladder.levels()[split.lo].speed +
                      split.t_hi * ladder.levels()[split.hi].speed;
  EXPECT_NEAR(work, s * 2.0, 1e-12);
  // On a level: no time sharing.
  const FreqLadder::Split exact = ladder.two_speed_split(0.75, 1.0);
  EXPECT_EQ(exact.lo, exact.hi);
  EXPECT_DOUBLE_EQ(exact.t_lo, 1.0);
  EXPECT_DOUBLE_EQ(exact.t_hi, 0.0);
  // Below the bottom level: clamped up (the ladder cannot run slower).
  const FreqLadder::Split low = ladder.two_speed_split(0.01, 1.0);
  EXPECT_EQ(low.lo, 0u);
  EXPECT_EQ(low.hi, 0u);
  EXPECT_DOUBLE_EQ(low.t_lo, 1.0);
  // Above the top level: rejected.
  EXPECT_THROW(ladder.two_speed_split(1.5, 1.0), Error);
}

TEST(FreqLadder, EmulationEnergyMatchesClosedForm) {
  const FreqLadder ladder = FreqLadder::from_model(PolynomialPowerModel::xscale(), 4);
  const double s = 0.6;
  const double s_lo = 0.5;
  const double s_hi = 0.75;
  const double p_lo = PolynomialPowerModel::xscale().power(s_lo);
  const double p_hi = PolynomialPowerModel::xscale().power(s_hi);
  // Chord through the adjacent levels: P = ((s_hi - s) P_lo + (s - s_lo) P_hi) / (s_hi - s_lo).
  const double chord = ((s_hi - s) * p_lo + (s - s_lo) * p_hi) / (s_hi - s_lo);
  EXPECT_NEAR(ladder.emulation_power(s), chord, 1e-12);
  EXPECT_NEAR(ladder.emulation_energy(s, 3.0), chord * 3.0, 1e-12);
  // Convexity of the sampled curve: the chord never undercuts the model.
  for (double speed = 0.26; speed < 1.0; speed += 0.05) {
    EXPECT_GE(ladder.emulation_power(speed),
              PolynomialPowerModel::xscale().power(speed) - 1e-12);
  }
}

TEST(FreqLadder, DenseLadderConvergesToContinuousModel) {
  const PolynomialPowerModel model = PolynomialPowerModel::xscale();
  const FreqLadder dense = FreqLadder::from_model(model, 512);
  for (double speed = 0.05; speed <= 1.0; speed += 0.01) {
    // Chord error of a convex curve is O(h^2); 512 levels put it well
    // below 1e-4 W on the normalized XScale curve.
    EXPECT_NEAR(dense.emulation_power(speed), model.power(std::max(speed, dense.min_speed())),
                1e-4)
        << "speed " << speed;
  }
}

TEST(FreqLadder, SingleLevelLadderDegeneratesToFixedSpeedFrameSim) {
  const PolynomialPowerModel model = PolynomialPowerModel::xscale();
  const EnergyCurve curve(model, 1.0, IdleDiscipline::kDormantEnable);
  const FreqLadder single = FreqLadder::from_model(model, 1);  // one level: smax
  ASSERT_EQ(single.size(), 1u);
  ASSERT_DOUBLE_EQ(single.max_speed(), 1.0);

  const std::vector<FrameTask> tasks{{0, 30, 1.0}, {1, 25, 1.0}, {2, 20, 1.0}};
  const std::vector<Cycles> actual{30, 25, 20};  // ACET == WCET
  const double kappa = 0.01;

  StochasticFrameConfig config;
  config.policy = StochasticPolicy::kStatic;
  config.ladder = &single;
  const StochasticFrameResult stochastic =
      simulate_frame_stochastic(tasks, actual, kappa, curve, config);

  // The same workload through the fixed-speed frame simulator at smax.
  const double work = kappa * 75.0;
  SpeedSchedule schedule;
  schedule.append(1.0, work / 1.0);
  schedule.append(0.0, 1.0 - work / 1.0);
  const FrameSimResult fixed = simulate_frame(tasks, kappa, schedule, curve);

  EXPECT_TRUE(stochastic.deadline_met);
  EXPECT_TRUE(fixed.deadline_met);
  EXPECT_NEAR(stochastic.completion, fixed.completion_time, 1e-9);
  EXPECT_NEAR(stochastic.energy, fixed.energy, 1e-9);
  for (double speed : stochastic.task_speeds) EXPECT_DOUBLE_EQ(speed, 1.0);
}

TEST(FreqLadder, TableRoundTrip) {
  const TablePowerModel table = TablePowerModel::xscale5();
  const FreqLadder ladder = FreqLadder::from_table(table);
  ASSERT_EQ(ladder.size(), table.points().size());
  const TablePowerModel back = ladder.as_table_model(table.static_power());
  for (std::size_t i = 0; i < ladder.size(); ++i) {
    EXPECT_DOUBLE_EQ(back.points()[i].speed, table.points()[i].speed);
    EXPECT_DOUBLE_EQ(back.points()[i].power, table.points()[i].power);
  }
}

TEST(FreqLadder, LevelAtOrAboveQuantizesUp) {
  const FreqLadder ladder = FreqLadder::from_model(PolynomialPowerModel::xscale(), 4);
  EXPECT_EQ(ladder.level_at_or_above(0.1), 0u);
  EXPECT_EQ(ladder.level_at_or_above(0.25), 0u);
  EXPECT_EQ(ladder.level_at_or_above(0.26), 1u);
  EXPECT_EQ(ladder.level_at_or_above(1.0), 3u);
  EXPECT_THROW(ladder.level_at_or_above(1.2), Error);
}

}  // namespace
}  // namespace retask
