// Bench-regression machinery (obs/bench_compare.hpp): report JSON
// round-trip, the pass/fail/bootstrap comparison paths the retask_bench
// tool is built on, and schema validation of malformed baselines.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "retask/common/error.hpp"
#include "retask/obs/bench_compare.hpp"

namespace retask {
namespace {

using obs::BenchComparison;
using obs::BenchReport;
using obs::BenchWorkloadResult;

BenchReport sample_report() {
  BenchReport report;
  report.jobs = 2;
  report.repeats = 5;
  report.backend = "avx2";
  BenchWorkloadResult fast;
  fast.name = "greedy_density_n2048";
  fast.median_ns = 1000000;
  fast.runs_ns = {900000, 1000000, 1100000};
  fast.metrics = {{"greedy.density_rejections", 647.0}, {"greedy.density_solves", 1.0}};
  BenchWorkloadResult slow;
  slow.name = "exact_dp_n24_cap16k";
  slow.median_ns = 25000000;
  slow.runs_ns = {24000000, 25000000, 26000000};
  slow.metrics = {{"exact_dp.cells_touched", 203269.0}};
  report.workloads = {fast, slow};
  return report;
}

TEST(BenchReportIo, RoundTripsThroughJson) {
  const BenchReport original = sample_report();
  std::stringstream buffer;
  obs::write_bench_report(buffer, original);
  const BenchReport parsed = obs::read_bench_report(buffer);

  EXPECT_EQ(parsed.schema, original.schema);
  EXPECT_EQ(parsed.jobs, original.jobs);
  EXPECT_EQ(parsed.repeats, original.repeats);
  EXPECT_EQ(parsed.backend, original.backend);
  ASSERT_EQ(parsed.workloads.size(), original.workloads.size());
  for (std::size_t i = 0; i < parsed.workloads.size(); ++i) {
    EXPECT_EQ(parsed.workloads[i].name, original.workloads[i].name);
    EXPECT_EQ(parsed.workloads[i].median_ns, original.workloads[i].median_ns);
    EXPECT_EQ(parsed.workloads[i].runs_ns, original.workloads[i].runs_ns);
    EXPECT_EQ(parsed.workloads[i].metrics, original.workloads[i].metrics);
  }
}

TEST(BenchReportIo, AcceptsReportsWithoutBackendField) {
  // Reports written before the SIMD layer carry no backend tag; they parse
  // with an empty backend (which the baseline-refresh guard then treats as
  // a config mismatch).
  std::istringstream in(R"({"schema":"retask-bench-v1","jobs":1,"repeats":1,"workloads":[]})");
  const BenchReport parsed = obs::read_bench_report(in);
  EXPECT_EQ(parsed.backend, "");
}

TEST(BenchReportIo, RejectsWrongSchemaDuplicatesAndBadValues) {
  const auto parse = [](const std::string& text) {
    std::istringstream in(text);
    return obs::read_bench_report(in);
  };
  EXPECT_THROW(parse(R"({"schema":"retask-bench-v999","jobs":1,"repeats":1,"workloads":[]})"),
               Error);
  EXPECT_THROW(parse(R"({"jobs":1,"repeats":1,"workloads":[]})"), Error);
  EXPECT_THROW(parse(R"({"schema":"retask-bench-v1","jobs":1,"repeats":1,"workloads":[
      {"name":"w","median_ns":1,"runs_ns":[1]},
      {"name":"w","median_ns":2,"runs_ns":[2]}]})"),
               Error);
  EXPECT_THROW(parse(R"({"schema":"retask-bench-v1","jobs":1,"repeats":1,"workloads":[
      {"name":"w","median_ns":-5,"runs_ns":[1]}]})"),
               Error);
  EXPECT_THROW(parse(R"({"schema":"retask-bench-v1","jobs":1,"repeats":1,"workloads":[
      {"name":"","median_ns":1,"runs_ns":[1]}]})"),
               Error);
  EXPECT_THROW(parse("not json at all"), Error);
}

TEST(BenchCompare, IdenticalReportsPass) {
  const BenchReport report = sample_report();
  const BenchComparison comparison = obs::compare_bench_reports(report, report, 2.0);
  EXPECT_TRUE(comparison.ok());
  EXPECT_TRUE(comparison.regressions.empty());
  EXPECT_TRUE(comparison.missing.empty());
  EXPECT_TRUE(comparison.added.empty());
  EXPECT_TRUE(comparison.metric_drift.empty());
}

TEST(BenchCompare, InjectedSlowdownFailsPastThreshold) {
  const BenchReport baseline = sample_report();
  BenchReport current = baseline;
  current.workloads[0].median_ns = baseline.workloads[0].median_ns * 2;  // exactly 2.0x

  // 2.0x is not > 2.0 threshold: still passes (threshold is exclusive)...
  EXPECT_TRUE(obs::compare_bench_reports(current, baseline, 2.0).ok());
  // ...but a hair beyond fails and reports the offending workload.
  current.workloads[0].median_ns += 1;
  const BenchComparison comparison = obs::compare_bench_reports(current, baseline, 2.0);
  EXPECT_FALSE(comparison.ok());
  ASSERT_EQ(comparison.regressions.size(), 1u);
  EXPECT_EQ(comparison.regressions[0].name, "greedy_density_n2048");
  EXPECT_GT(comparison.regressions[0].ratio, 2.0);
  EXPECT_EQ(comparison.regressions[0].baseline_ns, baseline.workloads[0].median_ns);
}

TEST(BenchCompare, LargeSpeedupsAreReportedAsImprovements) {
  const BenchReport baseline = sample_report();
  BenchReport current = baseline;
  current.workloads[0].median_ns = baseline.workloads[0].median_ns / 2;  // exactly 0.5x

  // Exactly 1/threshold is not < 1/threshold: no improvement reported
  // (symmetric to the exclusive regression gate)...
  EXPECT_TRUE(obs::compare_bench_reports(current, baseline, 2.0).improvements.empty());
  // ...but a hair faster lands in `improvements` without failing ok().
  current.workloads[0].median_ns -= 1;
  const BenchComparison comparison = obs::compare_bench_reports(current, baseline, 2.0);
  EXPECT_TRUE(comparison.ok());
  ASSERT_EQ(comparison.improvements.size(), 1u);
  EXPECT_EQ(comparison.improvements[0].name, "greedy_density_n2048");
  EXPECT_LT(comparison.improvements[0].ratio, 0.5);
  EXPECT_EQ(comparison.improvements[0].baseline_ns, baseline.workloads[0].median_ns);
  EXPECT_EQ(comparison.improvements[0].current_ns, current.workloads[0].median_ns);
}

TEST(BenchCompare, MissingAndAddedWorkloadsAreTracked) {
  const BenchReport baseline = sample_report();
  BenchReport current = baseline;
  current.workloads.erase(current.workloads.begin());  // drop the first workload
  BenchWorkloadResult extra;
  extra.name = "brand_new_workload";
  extra.median_ns = 10;
  extra.runs_ns = {10};
  current.workloads.push_back(extra);

  const BenchComparison comparison = obs::compare_bench_reports(current, baseline, 2.0);
  // A workload the baseline tracks vanished: that is a failure (a deleted
  // benchmark can hide a regression); an added one is informational.
  EXPECT_FALSE(comparison.ok());
  ASSERT_EQ(comparison.missing.size(), 1u);
  EXPECT_EQ(comparison.missing[0], "greedy_density_n2048");
  ASSERT_EQ(comparison.added.size(), 1u);
  EXPECT_EQ(comparison.added[0], "brand_new_workload");
  EXPECT_TRUE(comparison.regressions.empty());
}

TEST(BenchCompare, MetricDriftIsInformationalOnly) {
  const BenchReport baseline = sample_report();
  BenchReport current = baseline;
  current.workloads[1].metrics[0].second += 1000.0;
  const BenchComparison comparison = obs::compare_bench_reports(current, baseline, 2.0);
  EXPECT_TRUE(comparison.ok());
  ASSERT_EQ(comparison.metric_drift.size(), 1u);
  EXPECT_EQ(comparison.metric_drift[0].workload, "exact_dp_n24_cap16k");
  EXPECT_EQ(comparison.metric_drift[0].metric, "exact_dp.cells_touched");
}

TEST(BenchCompare, ZeroBaselineMedianNeverDividesByZero) {
  BenchReport baseline = sample_report();
  baseline.workloads[0].median_ns = 0;  // sub-resolution workload
  BenchReport current = sample_report();
  current.workloads[0].median_ns = 12345;
  EXPECT_TRUE(obs::compare_bench_reports(current, baseline, 2.0).ok());
}

TEST(BenchCompare, ThresholdMustBePositive) {
  const BenchReport report = sample_report();
  EXPECT_THROW(obs::compare_bench_reports(report, report, 0.0), Error);
  EXPECT_THROW(obs::compare_bench_reports(report, report, -1.0), Error);
}

TEST(BenchReportIo, FileWriterCreatesParentDirectoriesAndReaderLoadsThem) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "retask_bench_runner_test";
  std::filesystem::remove_all(dir);
  const std::filesystem::path path = dir / "nested" / "report.json";

  obs::write_bench_report_file(path.string(), sample_report());
  ASSERT_TRUE(std::filesystem::exists(path));
  const BenchReport loaded = obs::read_bench_report_file(path.string());
  EXPECT_EQ(loaded.workloads.size(), 2u);
  EXPECT_NE(loaded.find("exact_dp_n24_cap16k"), nullptr);
  EXPECT_EQ(loaded.find("no_such_workload"), nullptr);

  // Missing-baseline bootstrap: the reader throws a catchable Error, which
  // is what lets the tool treat "no baseline yet" as a first run instead of
  // a crash.
  EXPECT_THROW(obs::read_bench_report_file((dir / "absent.json").string()), Error);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace retask
