// Tests for the energy-budgeted acceptance (reward-maximization dual):
// exactness of the DP against brute force, greedy/UB sandwich, budget
// monotonicity, and duality against the rejection problem.
#include "retask/core/budgeted.hpp"

#include <gtest/gtest.h>

#include "retask/common/error.hpp"
#include "retask/core/exact_dp.hpp"
#include "retask/core/problem.hpp"
#include "retask/power/polynomial_power.hpp"
#include "test_util.hpp"

namespace retask {
namespace {

BudgetedProblem tiny(std::vector<FrameTask> tasks, double budget) {
  return BudgetedProblem{FrameTaskSet(std::move(tasks)),
                         EnergyCurve(PolynomialPowerModel::cubic(), 1.0,
                                     IdleDiscipline::kDormantEnable),
                         0.01, budget};
}

BudgetedProblem random_instance(std::uint64_t seed, double budget, int n = 10) {
  const RejectionProblem base = test::small_instance(seed, n, 1.6, 1.0);
  return BudgetedProblem{base.tasks(), base.curve(), base.work_per_cycle(), budget};
}

/// Brute force over all subsets (oracle for small n).
double brute_force_value(const BudgetedProblem& problem) {
  const std::size_t n = problem.tasks.size();
  double best = 0.0;
  for (std::uint32_t mask = 0; mask < (std::uint32_t{1} << n); ++mask) {
    std::vector<bool> accepted(n);
    for (std::size_t i = 0; i < n; ++i) accepted[i] = (mask >> i) & 1u;
    try {
      best = std::max(best, make_budgeted_solution(problem, accepted).value);
    } catch (const Error&) {
      // infeasible subset
    }
  }
  return best;
}

TEST(Budgeted, ValidatesInstances) {
  EXPECT_THROW(validate(tiny({{0, 50, 1.0}}, 0.0)), Error);
  EXPECT_NO_THROW(validate(tiny({{0, 50, 1.0}}, 1.0)));
}

TEST(Budgeted, MakeSolutionEnforcesBudgetAndCapacity) {
  // E(0.8) = 0.512 under the cubic model.
  const BudgetedProblem p = tiny({{0, 80, 1.0}, {1, 50, 1.0}}, 0.55);
  EXPECT_NO_THROW(make_budgeted_solution(p, {true, false}));
  EXPECT_THROW(make_budgeted_solution(p, {true, true}), Error);  // capacity 100 < 130
  const BudgetedProblem tight = tiny({{0, 80, 1.0}}, 0.4);
  EXPECT_THROW(make_budgeted_solution(tight, {true}), Error);  // 0.512 > 0.4
}

TEST(Budgeted, DpPicksValueOverSize) {
  // Budget allows ~90 cycles' energy; one large low-value task vs two small
  // high-value ones.
  const BudgetedProblem p = tiny({{0, 80, 1.0}, {1, 40, 0.9}, {2, 40, 0.9}}, 0.52);
  const BudgetedSolution s = solve_budgeted_dp(p);
  EXPECT_FALSE(s.accepted[0]);
  EXPECT_TRUE(s.accepted[1]);
  EXPECT_TRUE(s.accepted[2]);
  EXPECT_NEAR(s.value, 1.8, 1e-12);
}

TEST(Budgeted, DpMatchesBruteForce) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    for (const double budget : {0.2, 0.5, 1.0}) {
      const BudgetedProblem p = random_instance(seed, budget);
      EXPECT_NEAR(solve_budgeted_dp(p).value, brute_force_value(p), 1e-9)
          << "seed " << seed << " budget " << budget;
    }
  }
}

TEST(Budgeted, GreedySandwichedByDpAndUpperBound) {
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    const BudgetedProblem p = random_instance(seed, 0.6, 12);
    const double greedy = solve_budgeted_greedy(p).value;
    const double dp = solve_budgeted_dp(p).value;
    const double ub = budgeted_fractional_upper_bound(p);
    EXPECT_LE(greedy, dp + 1e-9) << "seed " << seed;
    EXPECT_LE(dp, ub + 1e-9) << "seed " << seed;
  }
}

TEST(Budgeted, ValueGrowsWithBudget) {
  const BudgetedProblem base = random_instance(4, 0.1);
  double prev = -1.0;
  for (const double budget : {0.1, 0.3, 0.6, 1.0, 2.0}) {
    BudgetedProblem p = base;
    p.energy_budget = budget;
    const double value = solve_budgeted_dp(p).value;
    EXPECT_GE(value, prev - 1e-12) << "budget " << budget;
    prev = value;
  }
}

TEST(Budgeted, GenerousBudgetAcceptsFullCapacity) {
  // With energy no object, the DP reduces to pure knapsack over cycles.
  const BudgetedProblem p = tiny({{0, 60, 1.0}, {1, 50, 2.0}, {2, 40, 0.5}}, 100.0);
  const BudgetedSolution s = solve_budgeted_dp(p);
  // Capacity 100: best pair is {1, 2} with value 2.5 (60+50 > 100, 60+40 -> 1.5).
  EXPECT_NEAR(s.value, 2.5, 1e-12);
}

TEST(Budgeted, DualityWithRejectionProblem) {
  // Solve rejection; feed the optimal energy as a budget to the dual: the
  // budgeted optimum must recover at least the accepted value of the
  // rejection optimum (it faces the same constraint that solution met).
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const RejectionProblem rej = test::small_instance(seed, 10, 1.8, 1.0);
    const RejectionSolution opt = ExactDpSolver().solve(rej);
    if (opt.energy <= 0.0) continue;
    const BudgetedProblem dual{rej.tasks(), rej.curve(), rej.work_per_cycle(),
                               opt.energy * (1.0 + 1e-9)};
    double accepted_value = 0.0;
    for (std::size_t i = 0; i < rej.size(); ++i) {
      if (opt.accepted[i]) accepted_value += rej.tasks()[i].penalty;
    }
    EXPECT_GE(solve_budgeted_dp(dual).value, accepted_value - 1e-9) << "seed " << seed;
  }
}

TEST(Budgeted, ImpossibleBudgetThrows) {
  // Dormant-disable: even the empty set leaks more than the budget.
  BudgetedProblem p{FrameTaskSet({{0, 50, 1.0}}),
                    EnergyCurve(PolynomialPowerModel::xscale(), 1.0,
                                IdleDiscipline::kDormantDisable),
                    0.01, 0.01};
  EXPECT_THROW(solve_budgeted_dp(p), Error);
  EXPECT_THROW(solve_budgeted_greedy(p), Error);
}

}  // namespace
}  // namespace retask
