// End-to-end integration tests: the full pipeline from workload generation
// through solving to independent simulation, across power models, idle
// disciplines and processor counts. These tests are the library's
// self-consistency net: every analytic claim a solver makes is re-derived by
// executing the schedule.
#include <gtest/gtest.h>

#include "retask/retask.hpp"

namespace retask {
namespace {

// Solve a frame instance, materialize the per-processor execution plans, run
// the frame simulator, and check (a) deadlines, (b) energy bookkeeping.
void verify_frame_solution(const RejectionProblem& problem, const RejectionSolution& solution) {
  check_solution(problem, solution);
  double simulated_energy = 0.0;
  for (int proc = 0; proc < problem.processor_count(); ++proc) {
    std::vector<FrameTask> assigned;
    double work = 0.0;
    for (std::size_t i = 0; i < problem.size(); ++i) {
      if (solution.accepted[i] && solution.processor_of[i] == proc) {
        assigned.push_back(problem.tasks()[i]);
        work += problem.work_of(i);
      }
    }
    const ExecutionPlan plan = problem.curve().plan(work);
    const SpeedSchedule schedule = SpeedSchedule::from_plan(plan);
    const FrameSimResult sim =
        simulate_frame(assigned, problem.work_per_cycle(), schedule, problem.curve());
    EXPECT_TRUE(sim.deadline_met) << "processor " << proc;
    simulated_energy += sim.energy;
  }
  EXPECT_NEAR(simulated_energy, solution.energy, 1e-4 * std::max(1.0, solution.energy));
}

struct PipelineCase {
  const char* label;
  bool discrete;
  IdleDiscipline idle;
  int processors;
  double load;
};

class FullPipeline : public ::testing::TestWithParam<PipelineCase> {};

TEST_P(FullPipeline, EverySolverSurvivesSimulation) {
  const PipelineCase& c = GetParam();
  const PolynomialPowerModel ideal = PolynomialPowerModel::xscale();
  const TablePowerModel table = TablePowerModel::xscale5();
  const PowerModel& model = c.discrete ? static_cast<const PowerModel&>(table)
                                       : static_cast<const PowerModel&>(ideal);

  ScenarioConfig config;
  config.task_count = 10;
  config.load = c.load * c.processors;
  config.resolution = 500.0;
  config.idle = c.idle;
  config.processor_count = c.processors;

  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    config.seed = seed;
    const RejectionProblem problem = make_scenario(config, model);
    const auto& lineup =
        c.processors == 1 ? standard_uniproc_lineup() : standard_multiproc_lineup();
    for (const auto& solver : lineup) {
      const RejectionSolution solution = solver->solve(problem);
      verify_frame_solution(problem, solution);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Pipelines, FullPipeline,
    ::testing::Values(PipelineCase{"ideal_enable_1p", false, IdleDiscipline::kDormantEnable, 1, 1.6},
                      PipelineCase{"ideal_disable_1p", false, IdleDiscipline::kDormantDisable, 1, 1.6},
                      PipelineCase{"table_enable_1p", true, IdleDiscipline::kDormantEnable, 1, 1.6},
                      PipelineCase{"table_disable_1p", true, IdleDiscipline::kDormantDisable, 1, 0.9},
                      PipelineCase{"ideal_enable_3p", false, IdleDiscipline::kDormantEnable, 3, 0.9},
                      PipelineCase{"table_enable_2p", true, IdleDiscipline::kDormantEnable, 2, 1.2}),
    [](const ::testing::TestParamInfo<PipelineCase>& param_info) { return param_info.param.label; });

TEST(Integration, ObjectiveDecomposesAcrossRegimes) {
  // At vanishing penalty scale the optimal objective tends to the pure
  // rejection regime (tiny); at huge scale it tends to the all-accept energy
  // (when feasible) — the crossover the paper's problem is about.
  const PolynomialPowerModel model = PolynomialPowerModel::xscale();
  ScenarioConfig config;
  config.task_count = 10;
  config.load = 0.9;  // feasible without rejection
  config.resolution = 500.0;
  config.seed = 7;

  config.penalty_scale = 1e-4;
  const RejectionProblem cheap = make_scenario(config, model);
  const double obj_cheap = ExactDpSolver().solve(cheap).objective();

  config.penalty_scale = 1e4;
  const RejectionProblem dear = make_scenario(config, model);
  const RejectionSolution sol_dear = ExactDpSolver().solve(dear);

  EXPECT_LT(obj_cheap, 0.01);  // nearly everything rejected for almost free
  EXPECT_EQ(sol_dear.accepted_count(), dear.size());  // nothing rejected
  // Accept-all energy: E(total work).
  EXPECT_NEAR(sol_dear.objective(),
              dear.curve().energy(dear.total_work()), 1e-6);
}

TEST(Integration, DormantDisableRaisesEveryObjective) {
  const PolynomialPowerModel model = PolynomialPowerModel::xscale();
  ScenarioConfig config;
  config.task_count = 10;
  config.load = 1.4;
  config.resolution = 500.0;
  config.seed = 11;
  config.idle = IdleDiscipline::kDormantEnable;
  const double enable_obj = ExactDpSolver().solve(make_scenario(config, model)).objective();
  config.idle = IdleDiscipline::kDormantDisable;
  const double disable_obj = ExactDpSolver().solve(make_scenario(config, model)).objective();
  EXPECT_GE(disable_obj, enable_obj - 1e-9);
}

TEST(Integration, AcceptanceFallsMonotonicallyWithLoadOnAverage) {
  const PolynomialPowerModel model = PolynomialPowerModel::xscale();
  double prev_acceptance = 1.1;
  for (const double load : {0.5, 1.0, 1.5, 2.0, 3.0}) {
    OnlineStats acceptance;
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
      ScenarioConfig config;
      config.task_count = 10;
      config.load = load;
      config.resolution = 500.0;
      config.seed = seed;
      const RejectionSolution s = ExactDpSolver().solve(make_scenario(config, model));
      acceptance.add(s.acceptance_ratio());
    }
    EXPECT_LE(acceptance.mean(), prev_acceptance + 0.05) << "load " << load;
    prev_acceptance = acceptance.mean();
  }
  EXPECT_LT(prev_acceptance, 0.9);  // heavy overload forces real rejection
}

}  // namespace
}  // namespace retask
