// Tests for the deterministic parallel execution layer: the parallel_for
// primitive itself and the thread-count independence of the experiment
// harness built on top of it.
#include "retask/common/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "retask/common/error.hpp"
#include "retask/core/fptas.hpp"
#include "retask/core/greedy.hpp"
#include "retask/core/lower_bound.hpp"
#include "retask/exp/harness.hpp"
#include "test_util.hpp"

namespace retask {
namespace {

TEST(ParallelFor, CoversEveryIndexExactlyOnceUnderContention) {
  constexpr std::size_t kN = 20000;
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h.store(0);
  parallel_for(kN, [&](std::size_t i) { hits[i].fetch_add(1, std::memory_order_relaxed); }, 8);
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, SingleJobRunsInlineInOrder) {
  std::vector<std::size_t> order;
  const auto caller = std::this_thread::get_id();
  parallel_for(5, [&](std::size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(i);
  }, 1);
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ParallelFor, EmptyRangeIsANoop) {
  parallel_for(0, [](std::size_t) { FAIL() << "fn must not run"; }, 8);
}

TEST(ParallelFor, RethrowsSmallestFailingIndex) {
  // Several indices throw; the caller must observe the one a sequential
  // loop would have hit first.
  try {
    parallel_for(1000, [](std::size_t i) {
      if (i >= 7 && i % 3 == 1) throw Error("fail at " + std::to_string(i));
    }, 8);
    FAIL() << "expected an Error";
  } catch (const Error& error) {
    EXPECT_STREQ(error.what(), "fail at 7");
  }
}

TEST(ParallelFor, NestedCallsDegradeToInline) {
  std::atomic<int> total{0};
  parallel_for(4, [&](std::size_t) {
    parallel_for(8, [&](std::size_t) { total.fetch_add(1); }, 8);
  }, 4);
  EXPECT_EQ(total.load(), 32);
}

TEST(ParallelFor, PoolIsReusableAcrossManyRegions) {
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> count{0};
    parallel_for(64, [&](std::size_t) { count.fetch_add(1); }, 4);
    ASSERT_EQ(count.load(), 64);
  }
}

TEST(DefaultJobs, OverrideWinsAndZeroRestoresAuto) {
  set_default_jobs(3);
  EXPECT_EQ(default_jobs(), 3);
  set_default_jobs(0);
  EXPECT_GE(default_jobs(), 1);
  EXPECT_THROW(set_default_jobs(-1), Error);
}

/// The acceptance-criteria test: a 64-instance Greedy+FPTAS comparison must
/// produce the same AlgoStats to the last bit at jobs=1 and jobs=8.
TEST(Harness, BitIdenticalStatsForOneVsEightJobs) {
  const auto factory = [](std::uint64_t seed) { return test::small_instance(seed, 12, 1.6); };
  const auto reference = [](const RejectionProblem& p) { return fractional_lower_bound(p); };
  std::vector<std::unique_ptr<RejectionSolver>> lineup;
  lineup.push_back(std::make_unique<DensityGreedySolver>());
  lineup.push_back(std::make_unique<FptasSolver>(0.1));

  constexpr int kInstances = 64;
  const auto sequential = run_comparison(factory, lineup, reference, kInstances, 1, /*jobs=*/1);
  const auto parallel = run_comparison(factory, lineup, reference, kInstances, 1, /*jobs=*/8);

  ASSERT_EQ(sequential.size(), parallel.size());
  for (std::size_t a = 0; a < sequential.size(); ++a) {
    SCOPED_TRACE(sequential[a].name);
    EXPECT_EQ(sequential[a].name, parallel[a].name);
    const auto expect_identical = [](const OnlineStats& lhs, const OnlineStats& rhs) {
      ASSERT_EQ(lhs.count(), static_cast<std::size_t>(kInstances));
      ASSERT_EQ(lhs.count(), rhs.count());
      // Exact double equality on purpose: the ordered reduction guarantees
      // bit-identical aggregates at any thread count.
      EXPECT_EQ(lhs.mean(), rhs.mean());
      EXPECT_EQ(lhs.min(), rhs.min());
      EXPECT_EQ(lhs.max(), rhs.max());
      EXPECT_EQ(lhs.variance(), rhs.variance());
    };
    expect_identical(sequential[a].ratio, parallel[a].ratio);
    expect_identical(sequential[a].acceptance, parallel[a].acceptance);
    expect_identical(sequential[a].objective, parallel[a].objective);
  }
}

TEST(Harness, BatchMatchesPerPointRuns) {
  const auto reference = [](const RejectionProblem& p) { return fractional_lower_bound(p); };
  std::vector<std::unique_ptr<RejectionSolver>> lineup;
  lineup.push_back(std::make_unique<DensityGreedySolver>());

  std::vector<ProblemFactory> factories;
  for (const double load : {0.8, 1.4, 2.0}) {
    factories.push_back(
        [load](std::uint64_t seed) { return test::small_instance(seed, 10, load); });
  }
  const auto batch = run_comparison_batch(factories, lineup, reference, 8, 1);
  ASSERT_EQ(batch.size(), factories.size());
  for (std::size_t point = 0; point < factories.size(); ++point) {
    const auto single = run_comparison(factories[point], lineup, reference, 8, 1, /*jobs=*/1);
    EXPECT_EQ(single[0].ratio.mean(), batch[point][0].ratio.mean());
    EXPECT_EQ(single[0].objective.mean(), batch[point][0].objective.mean());
  }
}

TEST(Harness, ParallelRunStillValidatesReference) {
  const auto factory = [](std::uint64_t seed) { return test::small_instance(seed, 8, 1.5); };
  // An inflated "reference" makes every ratio < 1: the guard must fire even
  // when instances are solved on worker threads.
  const auto inflated = [](const RejectionProblem& p) {
    return fractional_lower_bound(p) * 10.0 + 1.0;
  };
  std::vector<std::unique_ptr<RejectionSolver>> lineup;
  lineup.push_back(std::make_unique<DensityGreedySolver>());
  EXPECT_THROW(run_comparison(factory, lineup, inflated, 16, 1, /*jobs=*/4), Error);
}

}  // namespace
}  // namespace retask
