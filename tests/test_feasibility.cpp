// Unit tests for the schedulability tests.
#include "retask/sched/feasibility.hpp"

#include <gtest/gtest.h>

#include "retask/common/error.hpp"
#include "retask/power/polynomial_power.hpp"

namespace retask {
namespace {

TEST(FrameFeasible, MatchesCurveCap) {
  const PolynomialPowerModel m = PolynomialPowerModel::cubic();
  const EnergyCurve curve(m, 2.0, IdleDiscipline::kDormantEnable);
  EXPECT_TRUE(frame_feasible(curve, 0.0));
  EXPECT_TRUE(frame_feasible(curve, 2.0));
  EXPECT_FALSE(frame_feasible(curve, 2.01));
}

TEST(DemandedRate, AllAndSubset) {
  const PeriodicTaskSet tasks({{0, 10, 100, 0.0}, {1, 50, 200, 0.0}, {2, 30, 100, 0.0}});
  EXPECT_DOUBLE_EQ(demanded_rate(tasks, {}), 0.1 + 0.25 + 0.3);
  EXPECT_DOUBLE_EQ(demanded_rate(tasks, {true, false, true}), 0.1 + 0.3);
  EXPECT_DOUBLE_EQ(demanded_rate(tasks, {false, false, false}), 0.0);
}

TEST(DemandedRate, RejectsWrongSelectionSize) {
  const PeriodicTaskSet tasks({{0, 10, 100, 0.0}});
  EXPECT_THROW(demanded_rate(tasks, {true, false}), Error);
}

TEST(EdfFeasible, LiuLaylandBound) {
  const PeriodicTaskSet tasks({{0, 50, 100, 0.0}, {1, 100, 200, 0.0}});  // rate 1.0
  EXPECT_TRUE(edf_feasible(tasks, {}, 1.0));   // exactly full
  EXPECT_FALSE(edf_feasible(tasks, {}, 0.9));  // overloaded
  EXPECT_TRUE(edf_feasible(tasks, {true, false}, 0.5));
  EXPECT_THROW(edf_feasible(tasks, {}, -0.1), Error);
}

}  // namespace
}  // namespace retask
