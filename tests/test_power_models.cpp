// Unit tests for the polynomial and table power models.
#include <cmath>

#include <gtest/gtest.h>

#include "retask/common/error.hpp"
#include "retask/power/polynomial_power.hpp"
#include "retask/power/table_power.hpp"

namespace retask {
namespace {

TEST(PolynomialPower, EvaluatesCurve) {
  const PolynomialPowerModel m(0.08, 1.52, 3.0, 0.0, 1.0);
  EXPECT_NEAR(m.power(1.0), 1.6, 1e-12);
  EXPECT_NEAR(m.power(0.5), 0.08 + 1.52 * 0.125, 1e-12);
  EXPECT_DOUBLE_EQ(m.static_power(), 0.08);
  EXPECT_NEAR(m.dynamic_power(0.5), 1.52 * 0.125, 1e-12);
}

TEST(PolynomialPower, PresetsMatchTheGroupNormalization) {
  const PolynomialPowerModel xscale = PolynomialPowerModel::xscale();
  EXPECT_NEAR(xscale.power(1.0), 0.08 + 1.52, 1e-12);
  const PolynomialPowerModel cubic = PolynomialPowerModel::cubic();
  EXPECT_NEAR(cubic.power(1.0), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(cubic.static_power(), 0.0);
}

TEST(PolynomialPower, RejectsInvalidParameters) {
  EXPECT_THROW(PolynomialPowerModel(-0.1, 1.0, 3.0, 0.0, 1.0), Error);
  EXPECT_THROW(PolynomialPowerModel(0.0, 0.0, 3.0, 0.0, 1.0), Error);
  EXPECT_THROW(PolynomialPowerModel(0.0, 1.0, 1.0, 0.0, 1.0), Error);
  EXPECT_THROW(PolynomialPowerModel(0.0, 1.0, 3.0, 1.0, 1.0), Error);
}

TEST(PolynomialPower, RejectsOutOfRangeSpeed) {
  const PolynomialPowerModel m = PolynomialPowerModel::cubic();
  EXPECT_THROW(m.power(1.5), Error);
  EXPECT_THROW(m.power(-0.1), Error);
}

TEST(PolynomialPower, EnergyPerCycleIsPowerOverSpeed) {
  const PolynomialPowerModel m = PolynomialPowerModel::xscale();
  EXPECT_NEAR(m.energy_per_cycle(0.8), m.power(0.8) / 0.8, 1e-12);
}

TEST(PolynomialPower, AnalyticCriticalSpeed) {
  const PolynomialPowerModel m = PolynomialPowerModel::xscale();
  const double expected = std::pow(0.08 / (2.0 * 1.52), 1.0 / 3.0);
  EXPECT_NEAR(m.analytic_critical_speed(), expected, 1e-12);
  EXPECT_DOUBLE_EQ(PolynomialPowerModel::cubic().analytic_critical_speed(), 0.0);
}

TEST(PolynomialPower, CloneIsIndependentCopy) {
  const PolynomialPowerModel m = PolynomialPowerModel::xscale();
  const auto copy = m.clone();
  EXPECT_NEAR(copy->power(0.6), m.power(0.6), 1e-15);
  EXPECT_TRUE(copy->is_continuous());
  EXPECT_TRUE(copy->available_speeds().empty());
}

TEST(TablePower, SortsAndValidatesPoints) {
  const TablePowerModel m({{1.0, 1.6}, {0.5, 0.3}}, 0.1);
  EXPECT_DOUBLE_EQ(m.min_speed(), 0.5);
  EXPECT_DOUBLE_EQ(m.max_speed(), 1.0);
  EXPECT_FALSE(m.is_continuous());
  const auto speeds = m.available_speeds();
  ASSERT_EQ(speeds.size(), 2u);
  EXPECT_DOUBLE_EQ(speeds[0], 0.5);
  EXPECT_DOUBLE_EQ(speeds[1], 1.0);
}

TEST(TablePower, PowerOnlyAtListedSpeeds) {
  const TablePowerModel m({{0.5, 0.3}, {1.0, 1.6}}, 0.1);
  EXPECT_DOUBLE_EQ(m.power(0.5), 0.3);
  EXPECT_DOUBLE_EQ(m.power(1.0), 1.6);
  EXPECT_THROW(m.power(0.75), Error);
}

TEST(TablePower, RejectsInvalidTables) {
  EXPECT_THROW(TablePowerModel({}, 0.0), Error);
  // Duplicate speed.
  EXPECT_THROW(TablePowerModel({{0.5, 0.3}, {0.5, 0.4}}, 0.0), Error);
  // Dominated point (power not increasing).
  EXPECT_THROW(TablePowerModel({{0.5, 0.5}, {1.0, 0.4}}, 0.0), Error);
  // Idle power above the lowest operating point.
  EXPECT_THROW(TablePowerModel({{0.5, 0.3}}, 0.4), Error);
}

TEST(TablePower, SampledMatchesPolynomialCurve) {
  const TablePowerModel m = TablePowerModel::sampled(0.08, 1.52, 3.0, 0.2, 1.0, 5);
  const auto speeds = m.available_speeds();
  ASSERT_EQ(speeds.size(), 5u);
  EXPECT_DOUBLE_EQ(speeds.front(), 0.2);
  EXPECT_DOUBLE_EQ(speeds.back(), 1.0);
  for (const double s : speeds) {
    EXPECT_NEAR(m.power(s), 0.08 + 1.52 * s * s * s, 1e-12);
  }
  EXPECT_DOUBLE_EQ(m.static_power(), 0.08);
}

TEST(TablePower, Xscale5Preset) {
  const TablePowerModel m = TablePowerModel::xscale5();
  EXPECT_EQ(m.available_speeds().size(), 5u);
  EXPECT_DOUBLE_EQ(m.max_speed(), 1.0);
  EXPECT_NEAR(m.power(1.0), 1.6, 1e-12);
}

TEST(TablePower, CloneIsIndependentCopy) {
  const TablePowerModel m = TablePowerModel::xscale5();
  const auto copy = m.clone();
  EXPECT_FALSE(copy->is_continuous());
  EXPECT_EQ(copy->available_speeds().size(), 5u);
}

}  // namespace
}  // namespace retask
