// Sweep-aware solve caching: warm-vs-cold bit-identity of the prefix-DP
// sweep paths, the shared energy memo, and the harness's grouped solving —
// plus the energy-monotonicity property the warm starts lean on (reading a
// smaller capacity off a larger table only works because E(W) is a pure,
// non-decreasing function of the accepted load).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "retask/cache/energy_memo.hpp"
#include "retask/cache/sweep.hpp"
#include "retask/common/parallel.hpp"
#include "retask/core/algorithm_registry.hpp"
#include "retask/core/budgeted.hpp"
#include "retask/core/exact_dp.hpp"
#include "retask/core/lower_bound.hpp"
#include "retask/exp/harness.hpp"
#include "retask/exp/workload.hpp"
#include "retask/io/cli_options.hpp"
#include "retask/obs/metrics.hpp"
#include "test_util.hpp"

namespace retask {
namespace {

// ---------------------------------------------------------------------------
// Energy monotonicity: E(cycles) is non-decreasing in the accepted load for
// every registered power model, both idle disciplines, and with dormant
// overheads. Executing always draws at least the idle power, so accepting
// more work can never save energy — the property the capacity warm start
// and the budget binary search both rely on.

struct MonotoneCase {
  const char* model;
  IdleDiscipline idle;
  SleepParams sleep;
};

class EnergyMonotonicity : public ::testing::TestWithParam<MonotoneCase> {};

TEST_P(EnergyMonotonicity, EnergyOfCyclesIsNonDecreasing) {
  const MonotoneCase& param = GetParam();
  const std::unique_ptr<PowerModel> model = make_model_by_name(param.model);
  const EnergyCurve curve(*model, /*window=*/1.0, param.idle, param.sleep);
  const Cycles cap = 400;
  const RejectionProblem problem(FrameTaskSet({{0, cap, 1.0}}), curve,
                                 curve.max_workload() / static_cast<double>(cap), 1);
  double previous = problem.energy_of_cycles(0);
  EXPECT_GE(previous, 0.0);
  for (Cycles c = 1; c <= cap; ++c) {
    const double energy = problem.energy_of_cycles(c);
    // Exact comparison up to accumulated rounding in the hull evaluation.
    EXPECT_GE(energy, previous - 1e-9 * std::max(1.0, previous))
        << param.model << " cycles=" << c;
    previous = energy;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, EnergyMonotonicity,
    ::testing::Values(MonotoneCase{"xscale", IdleDiscipline::kDormantEnable, {}},
                      MonotoneCase{"xscale", IdleDiscipline::kDormantDisable, {}},
                      MonotoneCase{"xscale", IdleDiscipline::kDormantEnable, {0.02, 0.05}},
                      MonotoneCase{"cubic", IdleDiscipline::kDormantEnable, {}},
                      MonotoneCase{"cubic", IdleDiscipline::kDormantDisable, {}},
                      MonotoneCase{"cubic", IdleDiscipline::kDormantEnable, {0.05, 0.1}},
                      MonotoneCase{"table5", IdleDiscipline::kDormantEnable, {}},
                      MonotoneCase{"table5", IdleDiscipline::kDormantDisable, {}},
                      MonotoneCase{"table5", IdleDiscipline::kDormantEnable, {0.01, 0.02}}));

// ---------------------------------------------------------------------------
// Warm-vs-cold bit-identity: the sweep entry points promise the same bits
// as per-point cold solves, so every comparison below is exact (EXPECT_EQ
// on doubles, whole accept masks).

TEST(SweepCache, CapacitySweepMatchesColdSolvesBitForBit) {
  const std::vector<double> factors = {0.9, 0.45, 1.0, 0.6, 0.35};  // unsorted on purpose
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const RejectionProblem base =
        test::small_instance(seed, 12, 1.5, /*penalty_scale=*/seed % 2 ? 1.0 : 0.2);
    const std::vector<RejectionProblem> points = make_capacity_sweep(base, factors);
    std::vector<const RejectionProblem*> group;
    for (const RejectionProblem& point : points) group.push_back(&point);
    const std::vector<RejectionSolution> warm = ExactDpSolver().solve_sweep(group);
    ASSERT_EQ(warm.size(), points.size());
    for (std::size_t p = 0; p < points.size(); ++p) {
      const RejectionSolution cold = ExactDpSolver().solve(points[p]);
      EXPECT_EQ(warm[p].accepted, cold.accepted) << "seed=" << seed << " point=" << p;
      EXPECT_EQ(warm[p].energy, cold.energy) << "seed=" << seed << " point=" << p;
      EXPECT_EQ(warm[p].penalty, cold.penalty) << "seed=" << seed << " point=" << p;
    }
  }
}

TEST(SweepCache, SweepFallsBackWhenTaskSetsDiffer) {
  // Different seeds draw different task sets: solve_sweep must detect the
  // broken precondition and still return per-point optimal bits.
  const RejectionProblem a = test::small_instance(3, 10, 1.4);
  const RejectionProblem b = test::small_instance(4, 10, 1.4);
  const std::vector<const RejectionProblem*> group = {&a, &b};
  const std::vector<RejectionSolution> warm = ExactDpSolver().solve_sweep(group);
  ASSERT_EQ(warm.size(), 2u);
  const RejectionSolution cold_a = ExactDpSolver().solve(a);
  const RejectionSolution cold_b = ExactDpSolver().solve(b);
  EXPECT_EQ(warm[0].accepted, cold_a.accepted);
  EXPECT_EQ(warm[1].accepted, cold_b.accepted);
  EXPECT_EQ(warm[0].energy, cold_a.energy);
  EXPECT_EQ(warm[1].energy, cold_b.energy);
}

TEST(SweepCache, BudgetedSweepMatchesColdSolvesBitForBit) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const RejectionProblem base = test::small_instance(seed, 12, 1.4);
    BudgetedProblem problem{base.tasks(), base.curve(), base.work_per_cycle(), 1.0};
    const Cycles cap = std::min<Cycles>(base.cycle_capacity(), base.tasks().total_cycles());
    ASSERT_GE(cap, 1);
    // Budgets at varied fills, deliberately out of order.
    std::vector<double> budgets;
    for (const double fill : {0.8, 0.3, 1.0, 0.55}) {
      const double budget = base.energy_of_cycles(
          std::max<Cycles>(static_cast<Cycles>(static_cast<double>(cap) * fill), 1));
      if (budget > 0.0) budgets.push_back(budget);
    }
    ASSERT_FALSE(budgets.empty());
    const std::vector<BudgetedSolution> warm = solve_budgeted_dp_sweep(problem, budgets);
    ASSERT_EQ(warm.size(), budgets.size());
    for (std::size_t b = 0; b < budgets.size(); ++b) {
      BudgetedProblem cold_problem = problem;
      cold_problem.energy_budget = budgets[b];
      const BudgetedSolution cold = solve_budgeted_dp(cold_problem);
      EXPECT_EQ(warm[b].accepted, cold.accepted) << "seed=" << seed << " budget=" << b;
      EXPECT_EQ(warm[b].value, cold.value) << "seed=" << seed << " budget=" << b;
      EXPECT_EQ(warm[b].energy, cold.energy) << "seed=" << seed << " budget=" << b;
    }
  }
}

// ---------------------------------------------------------------------------
// EnergyMemo: memoized lookups return the cold path's bits, per-thread
// shards never race, and a memo-attached problem is observably identical.

TEST(EnergyMemoTest, MemoizedProblemMatchesColdBits) {
  const RejectionProblem cold = test::small_instance(5, 10, 1.5);
  RejectionProblem warm = cold;
  warm.attach_energy_memo(std::make_shared<EnergyMemo>());
  for (Cycles c = 0; c <= cold.cycle_capacity(); ++c) {
    EXPECT_EQ(warm.energy_of_cycles(c), cold.energy_of_cycles(c)) << "cycles=" << c;
  }
  // Second pass hits the memo and must still return the identical bits.
  for (Cycles c = 0; c <= cold.cycle_capacity(); ++c) {
    EXPECT_EQ(warm.energy_of_cycles(c), cold.energy_of_cycles(c)) << "cycles=" << c;
  }
}

TEST(EnergyMemoTest, ComputesOncePerCyclesPerThread) {
  EnergyMemo memo;
  std::atomic<int> computes{0};
  const auto compute = [&](Cycles cycles) {
    computes.fetch_add(1, std::memory_order_relaxed);
    return static_cast<double>(cycles) * 2.0;
  };
  EXPECT_EQ(memo.get_or_compute(7, compute), 14.0);
  EXPECT_EQ(memo.get_or_compute(7, compute), 14.0);
  EXPECT_EQ(memo.get_or_compute(9, compute), 18.0);
  EXPECT_EQ(computes.load(), 2);
  EXPECT_EQ(memo.local_size(), 2u);
  EXPECT_GE(memo.shard_count(), 1u);
}

TEST(EnergyMemoTest, SharedAcrossWorkersReturnsColdValues) {
  const RejectionProblem cold = test::small_instance(6, 10, 1.5);
  const auto memo = std::make_shared<EnergyMemo>();
  RejectionProblem warm = cold;
  warm.attach_energy_memo(memo);
  // Reference values computed before the parallel region (cold path).
  std::vector<double> expected;
  for (Cycles c = 0; c <= cold.cycle_capacity(); ++c) {
    expected.push_back(cold.energy_of_cycles(c));
  }
  const std::size_t rounds = 64;
  std::vector<double> got(rounds * expected.size(), -1.0);
  parallel_for(
      rounds,
      [&](std::size_t r) {
        // Every round revisits every cycle count, so threads repeatedly hit
        // and populate their own shards concurrently.
        for (std::size_t c = 0; c < expected.size(); ++c) {
          got[r * expected.size() + c] = warm.energy_of_cycles(static_cast<Cycles>(c));
        }
      },
      /*jobs=*/8);
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], expected[i % expected.size()]);
  }
}

// ---------------------------------------------------------------------------
// Harness: grouped sweep solving and per-cell memos change nothing about
// the aggregates, at any job count.

std::vector<std::vector<AlgoStats>> run_batch(const BatchOptions& options, int jobs) {
  std::vector<ProblemFactory> factories;
  for (const double factor : {1.0, 0.8, 0.6}) {
    factories.push_back([factor](std::uint64_t seed) {
      return make_capacity_sweep(test::small_instance(seed, 10, 1.4), {factor}).front();
    });
  }
  const auto reference = [](const RejectionProblem& p) { return fractional_lower_bound(p); };
  const auto lineup = standard_uniproc_lineup();
  return run_comparison_batch(factories, lineup, reference, /*instances=*/4,
                              /*seed0=*/11, jobs, options);
}

void expect_same_aggregates(const std::vector<std::vector<AlgoStats>>& a,
                            const std::vector<std::vector<AlgoStats>>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t p = 0; p < a.size(); ++p) {
    ASSERT_EQ(a[p].size(), b[p].size());
    for (std::size_t s = 0; s < a[p].size(); ++s) {
      EXPECT_EQ(a[p][s].name, b[p][s].name);
      EXPECT_EQ(a[p][s].ratio.count(), b[p][s].ratio.count());
      EXPECT_EQ(a[p][s].ratio.mean(), b[p][s].ratio.mean());
      EXPECT_EQ(a[p][s].ratio.min(), b[p][s].ratio.min());
      EXPECT_EQ(a[p][s].ratio.max(), b[p][s].ratio.max());
      EXPECT_EQ(a[p][s].acceptance.mean(), b[p][s].acceptance.mean());
      EXPECT_EQ(a[p][s].objective.mean(), b[p][s].objective.mean());
      EXPECT_EQ(a[p][s].objective.min(), b[p][s].objective.min());
      EXPECT_EQ(a[p][s].objective.max(), b[p][s].objective.max());
    }
  }
}

TEST(HarnessSweepCache, GroupedSolvingMatchesColdHarnessBitForBit) {
  BatchOptions cold;
  cold.sweep_reuse = false;
  cold.cell_energy_memo = false;
  expect_same_aggregates(run_batch(cold, /*jobs=*/1), run_batch({}, /*jobs=*/1));
}

TEST(HarnessSweepCache, GroupedSolvingIsJobCountInvariant) {
  expect_same_aggregates(run_batch({}, /*jobs=*/1), run_batch({}, /*jobs=*/8));
}

#if defined(RETASK_OBS_ENABLED) && RETASK_OBS_ENABLED
TEST(HarnessSweepCache, WarmStartCountersProveReuse) {
  const RejectionProblem base = test::small_instance(9, 12, 1.5);
  const std::vector<RejectionProblem> points =
      make_capacity_sweep(base, {1.0, 0.8, 0.6, 0.4});
  std::vector<const RejectionProblem*> group;
  for (const RejectionProblem& point : points) group.push_back(&point);
  obs::Registry metrics;
  {
    obs::ActiveScope scope(metrics);
    (void)ExactDpSolver().solve_sweep(group);
  }
  const auto counter = [&](const char* name) {
    return metrics.counter(obs::intern_metric(obs::MetricKind::kCounter, name));
  };
  // One table fill serves all four points: 1 solve, 3 warm starts.
  EXPECT_EQ(counter("exact_dp.solves"), 1u);
  EXPECT_EQ(counter("dp.warm_starts"), 3u);
  EXPECT_EQ(counter("dp.sweep_fallbacks"), 0u);
}

TEST(HarnessSweepCache, EnergyMemoCountersProveReuse) {
  const RejectionProblem cold = test::small_instance(10, 8, 1.4);
  RejectionProblem warm = cold;
  warm.attach_energy_memo(std::make_shared<EnergyMemo>());
  obs::Registry metrics;
  {
    obs::ActiveScope scope(metrics);
    (void)warm.energy_of_cycles(5);
    (void)warm.energy_of_cycles(5);
    (void)warm.energy_of_cycles(6);
  }
  const auto counter = [&](const char* name) {
    return metrics.counter(obs::intern_metric(obs::MetricKind::kCounter, name));
  };
  EXPECT_EQ(counter("cache.energy_misses"), 2u);
  EXPECT_EQ(counter("cache.energy_hits"), 1u);
}
#endif  // RETASK_OBS_ENABLED

}  // namespace
}  // namespace retask
