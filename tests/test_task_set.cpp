// Unit tests for task validation and task-set aggregates.
#include "retask/task/task_set.hpp"

#include <gtest/gtest.h>

#include "retask/common/error.hpp"

namespace retask {
namespace {

TEST(FrameTask, Validation) {
  EXPECT_NO_THROW(validate(FrameTask{0, 10, 1.0}));
  EXPECT_THROW(validate(FrameTask{0, 0, 1.0}), Error);
  EXPECT_THROW(validate(FrameTask{0, -5, 1.0}), Error);
  EXPECT_THROW(validate(FrameTask{0, 10, -0.1}), Error);
  EXPECT_NO_THROW(validate(FrameTask{0, 10, 0.0}));  // zero penalty allowed
}

TEST(PeriodicTask, Validation) {
  EXPECT_NO_THROW(validate(PeriodicTask{0, 10, 100, 1.0}));
  EXPECT_THROW(validate(PeriodicTask{0, 0, 100, 1.0}), Error);
  EXPECT_THROW(validate(PeriodicTask{0, 10, 0, 1.0}), Error);
  EXPECT_THROW(validate(PeriodicTask{0, 10, 100, -1.0}), Error);
}

TEST(PeriodicTask, RateIsCyclesOverPeriod) {
  const PeriodicTask t{0, 25, 100, 0.0};
  EXPECT_DOUBLE_EQ(t.rate(), 0.25);
}

TEST(FrameTaskSet, Aggregates) {
  const FrameTaskSet set({{0, 10, 1.5}, {1, 20, 2.5}, {2, 5, 0.0}});
  EXPECT_EQ(set.size(), 3u);
  EXPECT_FALSE(set.empty());
  EXPECT_EQ(set.total_cycles(), 35);
  EXPECT_DOUBLE_EQ(set.total_penalty(), 4.0);
  EXPECT_EQ(set[1].cycles, 20);
}

TEST(FrameTaskSet, EmptyDefault) {
  const FrameTaskSet set;
  EXPECT_TRUE(set.empty());
  EXPECT_EQ(set.total_cycles(), 0);
  EXPECT_DOUBLE_EQ(set.total_penalty(), 0.0);
}

TEST(FrameTaskSet, RejectsDuplicateIdsAndBadTasks) {
  EXPECT_THROW(FrameTaskSet({{0, 10, 1.0}, {0, 20, 1.0}}), Error);
  EXPECT_THROW(FrameTaskSet({{0, 0, 1.0}}), Error);
}

TEST(PeriodicTaskSet, Aggregates) {
  const PeriodicTaskSet set({{0, 10, 100, 1.0}, {1, 30, 200, 2.0}});
  EXPECT_EQ(set.size(), 2u);
  EXPECT_DOUBLE_EQ(set.total_rate(), 0.1 + 0.15);
  EXPECT_DOUBLE_EQ(set.total_penalty(), 3.0);
  EXPECT_EQ(set.hyper_period(), 200);
}

TEST(PeriodicTaskSet, HyperPeriodOfCoprimePeriods) {
  const PeriodicTaskSet set({{0, 1, 7, 0.0}, {1, 1, 13, 0.0}, {2, 1, 4, 0.0}});
  EXPECT_EQ(set.hyper_period(), 7 * 13 * 4);
}

TEST(PeriodicTaskSet, RejectsDuplicateIds) {
  EXPECT_THROW(PeriodicTaskSet({{3, 10, 100, 1.0}, {3, 10, 100, 1.0}}), Error);
}

}  // namespace
}  // namespace retask
