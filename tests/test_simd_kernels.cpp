// Tests for the SIMD kernel layer: every available backend must reproduce
// the scalar reference kernels bit for bit at every width (including the
// vector-width edges), the fused hull-energy kernel must match
// EnergyCurve::energy exactly, and whole solvers must be backend- and
// thread-count-invariant down to the last bit.
#include "retask/simd/kernels.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "retask/common/error.hpp"
#include "retask/common/rng.hpp"
#include "retask/core/budgeted.hpp"
#include "retask/core/exact_dp.hpp"
#include "retask/core/fptas.hpp"
#include "retask/core/greedy.hpp"
#include "retask/core/lower_bound.hpp"
#include "retask/exp/harness.hpp"
#include "retask/power/table_power.hpp"
#include "retask/simd/backend.hpp"
#include "test_util.hpp"

namespace retask {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Every backend the host can actually execute (always includes scalar).
std::vector<simd::Backend> available_backends() {
  std::vector<simd::Backend> out;
  for (const simd::Backend b : {simd::Backend::kScalar, simd::Backend::kSse2,
                                simd::Backend::kAvx2, simd::Backend::kNeon}) {
    if (simd::backend_available(b)) out.push_back(b);
  }
  return out;
}

/// Row widths covering the interesting edges: below/at/above every vector
/// width in use (2 and 4 lanes), the take-bit word boundary, and a bulk size.
const std::vector<std::size_t> kWidths = {1, 2, 3, 4, 5, 7, 8, 9, 63, 64, 65, 130, 4096};

/// Bitwise equality for doubles (distinguishes -0.0 from 0.0 and compares
/// NaN/inf payloads exactly).
::testing::AssertionResult bits_equal(double a, double b) {
  if (std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b)) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure() << a << " != " << b << " (bitwise)";
}

/// A random DP value row: mostly finite values, ~25% -inf sentinels.
std::vector<double> random_f64_row(Rng& rng, std::size_t width) {
  std::vector<double> row(width);
  for (double& v : row) {
    v = rng.uniform() < 0.25 ? -kInf : rng.uniform(-50.0, 50.0);
  }
  return row;
}

TEST(SimdBackend, ParseNamesRoundTrip) {
  simd::Backend b = simd::Backend::kScalar;
  EXPECT_TRUE(simd::parse_backend("off", b));
  EXPECT_EQ(b, simd::Backend::kScalar);
  EXPECT_TRUE(simd::parse_backend("scalar", b));
  EXPECT_EQ(b, simd::Backend::kScalar);
  EXPECT_TRUE(simd::parse_backend("sse2", b));
  EXPECT_EQ(b, simd::Backend::kSse2);
  EXPECT_TRUE(simd::parse_backend("avx2", b));
  EXPECT_EQ(b, simd::Backend::kAvx2);
  EXPECT_TRUE(simd::parse_backend("neon", b));
  EXPECT_EQ(b, simd::Backend::kNeon);
  // "auto" and "" defer to detection: recognized but not a fixed backend.
  EXPECT_FALSE(simd::parse_backend("auto", b));
  EXPECT_FALSE(simd::parse_backend("", b));
  EXPECT_THROW(simd::parse_backend("avx512", b), Error);
  EXPECT_EQ(simd::to_string(simd::Backend::kScalar), "scalar");
  EXPECT_EQ(simd::to_string(simd::Backend::kAvx2), "avx2");
}

TEST(SimdBackend, ScalarAlwaysAvailableAndDetectIsAvailable) {
  EXPECT_TRUE(simd::backend_available(simd::Backend::kScalar));
  EXPECT_TRUE(simd::backend_available(simd::detect_backend()));
  EXPECT_EQ(&simd::kernels_for(simd::Backend::kScalar), simd::scalar_table());
  EXPECT_NE(simd::scalar_table(), nullptr);
}

TEST(SimdBackend, ScopedOverrideNestsAndRestores) {
  const simd::Backend ambient = simd::active_backend();
  {
    simd::ScopedBackend outer(simd::Backend::kScalar);
    EXPECT_EQ(simd::active_backend(), simd::Backend::kScalar);
    if (simd::backend_available(simd::Backend::kSse2)) {
      simd::ScopedBackend inner(simd::Backend::kSse2);
      EXPECT_EQ(simd::active_backend(), simd::Backend::kSse2);
    }
    EXPECT_EQ(simd::active_backend(), simd::Backend::kScalar);
  }
  EXPECT_EQ(simd::active_backend(), ambient);
}

TEST(SimdKernels, RelaxF64MatchesScalarAtEveryWidth) {
  const simd::KernelTable& scalar = *simd::scalar_table();
  for (const simd::Backend backend : available_backends()) {
    const simd::KernelTable& table = simd::kernels_for(backend);
    for (const std::size_t width : kWidths) {
      Rng rng(0xC0FFEE ^ (width * 4u + static_cast<std::size_t>(backend)));
      for (int rep = 0; rep < 8; ++rep) {
        const auto shift = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(width) - 1));
        const std::vector<double> base = random_f64_row(rng, width);
        const std::size_t words = (width + 63) / 64;
        std::vector<std::uint64_t> base_take(words);
        for (auto& w : base_take) w = rng();
        const double add = rng.uniform(0.1, 20.0);

        std::vector<double> row_a = base;
        std::vector<double> row_b = base;
        std::vector<std::uint64_t> take_a = base_take;
        std::vector<std::uint64_t> take_b = base_take;
        scalar.relax_desc_f64(row_a.data(), take_a.data(), shift, shift, width - 1, add);
        table.relax_desc_f64(row_b.data(), take_b.data(), shift, shift, width - 1, add);
        for (std::size_t w = 0; w < width; ++w) {
          ASSERT_TRUE(bits_equal(row_a[w], row_b[w]))
              << simd::to_string(backend) << " width=" << width << " shift=" << shift
              << " w=" << w;
        }
        ASSERT_EQ(take_a, take_b) << simd::to_string(backend) << " width=" << width;
      }
    }
  }
}

TEST(SimdKernels, RelaxF64EmptyRangeIsANoop) {
  for (const simd::Backend backend : available_backends()) {
    const simd::KernelTable& table = simd::kernels_for(backend);
    std::vector<double> row = {1.0, 2.0, 3.0};
    std::vector<std::uint64_t> take = {0};
    // hi < lo: the descending loop never executes.
    table.relax_desc_f64(row.data(), take.data(), 2, 2, 1, 5.0);
    EXPECT_EQ(row, (std::vector<double>{1.0, 2.0, 3.0}));
    EXPECT_EQ(take[0], 0u);
  }
}

TEST(SimdKernels, RelaxI64MatchesScalarAtEveryWidth) {
  const simd::KernelTable& scalar = *simd::scalar_table();
  for (const simd::Backend backend : available_backends()) {
    const simd::KernelTable& table = simd::kernels_for(backend);
    for (const std::size_t width : kWidths) {
      Rng rng(0xBADD1E ^ (width * 4u + static_cast<std::size_t>(backend)));
      for (int rep = 0; rep < 8; ++rep) {
        const auto shift = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(width) - 1));
        std::vector<std::int64_t> base_rej(width);
        std::vector<double> base_pay(width);
        for (std::size_t w = 0; w < width; ++w) {
          base_rej[w] = rng.uniform() < 0.3 ? -1 : rng.uniform_int(0, 1000000);
          base_pay[w] = rng.uniform(0.0, 100.0);
        }
        const std::size_t words = (width + 63) / 64;
        std::vector<std::uint64_t> base_take(words);
        for (auto& w : base_take) w = rng();
        const std::int64_t add_cycles = rng.uniform_int(1, 5000);
        const double add_pay = rng.uniform(0.1, 10.0);

        std::vector<std::int64_t> rej_a = base_rej;
        std::vector<std::int64_t> rej_b = base_rej;
        std::vector<double> pay_a = base_pay;
        std::vector<double> pay_b = base_pay;
        std::vector<std::uint64_t> take_a = base_take;
        std::vector<std::uint64_t> take_b = base_take;
        scalar.relax_desc_i64(rej_a.data(), pay_a.data(), take_a.data(), shift, shift, width - 1,
                              add_cycles, add_pay);
        table.relax_desc_i64(rej_b.data(), pay_b.data(), take_b.data(), shift, shift, width - 1,
                             add_cycles, add_pay);
        ASSERT_EQ(rej_a, rej_b) << simd::to_string(backend) << " width=" << width;
        for (std::size_t w = 0; w < width; ++w) {
          ASSERT_TRUE(bits_equal(pay_a[w], pay_b[w]))
              << simd::to_string(backend) << " width=" << width << " w=" << w;
        }
        ASSERT_EQ(take_a, take_b) << simd::to_string(backend) << " width=" << width;
      }
    }
  }
}

TEST(SimdKernels, ArgmaxMatchesScalarIncludingTies) {
  const simd::KernelTable& scalar = *simd::scalar_table();
  for (const simd::Backend backend : available_backends()) {
    const simd::KernelTable& table = simd::kernels_for(backend);
    for (const std::size_t n : kWidths) {
      Rng rng(0xA97A ^ (n * 4u + static_cast<std::size_t>(backend)));
      for (int rep = 0; rep < 12; ++rep) {
        std::vector<double> values(n);
        for (double& v : values) v = rng.uniform(-10.0, 10.0);
        // Force ties (duplicate the value at a random index elsewhere) and
        // signed zeros so the first-attainment rule is actually exercised.
        if (n >= 2) {
          const auto i = static_cast<std::size_t>(
              rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
          const auto j = static_cast<std::size_t>(
              rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
          values[j] = values[i];
          values[static_cast<std::size_t>(
              rng.uniform_int(0, static_cast<std::int64_t>(n) - 1))] =
              rng.uniform() < 0.5 ? 0.0 : -0.0;
        }
        for (const double init : {-kInf, 0.0, values[0], 100.0}) {
          ASSERT_EQ(scalar.argmax_f64(values.data(), n, init),
                    table.argmax_f64(values.data(), n, init))
              << simd::to_string(backend) << " n=" << n << " init=" << init;
        }
      }
    }
  }
}

TEST(SimdKernels, ArgminStridedMatchesScalarIncludingInfSentinels) {
  const simd::KernelTable& scalar = *simd::scalar_table();
  for (const simd::Backend backend : available_backends()) {
    const simd::KernelTable& table = simd::kernels_for(backend);
    for (const std::size_t n : kWidths) {
      for (const std::size_t stride : {std::size_t{1}, std::size_t{3}}) {
        Rng rng(0x317 ^ (n * 8u + stride + static_cast<std::size_t>(backend)));
        for (int rep = 0; rep < 8; ++rep) {
          std::vector<double> values(n * stride, 1e300);
          for (std::size_t i = 0; i < n; ++i) {
            // The greedy's delta rows mix finite deltas with +inf sentinels.
            values[i * stride] = rng.uniform() < 0.3 ? kInf : rng.uniform(-5.0, 5.0);
          }
          if (n >= 2) values[(n - 1) * stride] = values[0];  // tie across ends
          for (const double init : {kInf, 0.0, -1e-12}) {
            ASSERT_EQ(scalar.argmin_strided_f64(values.data(), n, stride, init),
                      table.argmin_strided_f64(values.data(), n, stride, init))
                << simd::to_string(backend) << " n=" << n << " stride=" << stride;
          }
        }
      }
    }
  }
}

TEST(SimdKernels, SelectMaskMatchesScalarAtEveryWidth) {
  // The lockstep/select prediction scan: bit i set iff
  // total - kept[i] < snapshot. -inf kept entries (unreachable rows) fold
  // into the compare — total - (-inf) = +inf is never < snapshot, even when
  // snapshot is +inf itself. Widths are capped at the kernel's 64-row
  // contract.
  const simd::KernelTable& scalar = *simd::scalar_table();
  for (const simd::Backend backend : available_backends()) {
    const simd::KernelTable& table = simd::kernels_for(backend);
    for (const std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{3}, std::size_t{4},
                                std::size_t{5}, std::size_t{7}, std::size_t{8}, std::size_t{9},
                                std::size_t{31}, std::size_t{63}, std::size_t{64}}) {
      Rng rng(0x5E1E ^ (n * 4u + static_cast<std::size_t>(backend)));
      for (int rep = 0; rep < 12; ++rep) {
        const std::vector<double> kept = random_f64_row(rng, n);
        const double total = rng.uniform(0.0, 100.0);
        for (const double snapshot : {kInf, total, rng.uniform(-50.0, 150.0), 0.0}) {
          std::uint64_t expected = 0;
          for (std::size_t i = 0; i < n; ++i) {
            if (total - kept[i] < snapshot) expected |= std::uint64_t{1} << i;
          }
          ASSERT_EQ(scalar.select_mask_f64(kept.data(), n, total, snapshot), expected)
              << "scalar n=" << n;
          ASSERT_EQ(table.select_mask_f64(kept.data(), n, total, snapshot), expected)
              << simd::to_string(backend) << " n=" << n;
        }
      }
    }
  }
}

TEST(SimdKernels, SelectScanMatchesScalarAtEveryWidth) {
  // The select's replay walk: visits the set mask bits in ascending order,
  // prunes rows whose penalty alone reaches the incumbent, early-exits (and
  // reports done) when a candidate's energy alone reaches it, and otherwise
  // takes objective improvements. Every backend must reproduce the scalar
  // walk's (best, best_w, done) triple exactly — the walk is order-sensitive,
  // so a single divergence shows up in the outputs. Widths are capped at the
  // kernel's 64-row contract; mask bits at or above n are zero per contract.
  const simd::KernelTable& scalar = *simd::scalar_table();
  for (const simd::Backend backend : available_backends()) {
    const simd::KernelTable& table = simd::kernels_for(backend);
    for (const std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{3}, std::size_t{4},
                                std::size_t{5}, std::size_t{7}, std::size_t{8}, std::size_t{9},
                                std::size_t{31}, std::size_t{63}, std::size_t{64}}) {
      Rng rng(0x5CA9 ^ (n * 4u + static_cast<std::size_t>(backend)));
      for (int rep = 0; rep < 12; ++rep) {
        const std::vector<double> kept = random_f64_row(rng, n);
        // Ascending non-negative energies, as the solver's capacity rows
        // produce — including exact duplicates so ties hit both prune arms.
        std::vector<double> energy(n);
        double acc = rng.uniform(0.0, 1.0);
        for (std::size_t i = 0; i < n; ++i) {
          if (rng.uniform() < 0.7) acc += rng.uniform(0.0, 3.0);
          energy[i] = acc;
        }
        const double total = rng.uniform(0.0, 100.0);
        std::uint64_t mask = rng();
        if (n < 64) mask &= (std::uint64_t{1} << n) - 1;
        const std::size_t w0 = static_cast<std::size_t>(rng.uniform_int(0, 1000));
        for (const double init : {kInf, total, rng.uniform(-50.0, 150.0), energy[0]}) {
          double best_a = init;
          double best_b = init;
          std::size_t w_a = static_cast<std::size_t>(-1);
          std::size_t w_b = static_cast<std::size_t>(-1);
          const std::uint32_t done_a =
              scalar.select_scan_f64(kept.data(), energy.data(), n, mask, total, w0, &best_a, &w_a);
          const std::uint32_t done_b =
              table.select_scan_f64(kept.data(), energy.data(), n, mask, total, w0, &best_b, &w_b);
          ASSERT_EQ(done_a, done_b)
              << simd::to_string(backend) << " n=" << n << " init=" << init;
          ASSERT_TRUE(bits_equal(best_a, best_b))
              << simd::to_string(backend) << " n=" << n << " init=" << init;
          ASSERT_EQ(w_a, w_b) << simd::to_string(backend) << " n=" << n << " init=" << init;
        }
      }
    }
  }
}

/// Curves covering both idle disciplines and a costly sleep transition on a
/// discrete (hull) model — the kernel's entire domain.
std::vector<EnergyCurve> hull_curves() {
  const TablePowerModel model = TablePowerModel::xscale5();
  std::vector<EnergyCurve> curves;
  curves.emplace_back(model, 1.0, IdleDiscipline::kDormantEnable);
  curves.emplace_back(model, 2.5, IdleDiscipline::kDormantDisable);
  SleepParams sleep;
  sleep.switch_time = 0.2;
  sleep.switch_energy = 0.05;
  curves.emplace_back(model, 1.0, IdleDiscipline::kDormantEnable, sleep);
  return curves;
}

TEST(SimdKernels, EnergyBatchMatchesPerElementEnergyBitwise) {
  for (const EnergyCurve& curve : hull_curves()) {
    const double wpc = 1.0 / 1000.0;
    const auto cap = static_cast<std::int64_t>(curve.max_workload() / wpc * (1.0 - 1e-9));
    for (const simd::Backend backend : available_backends()) {
      simd::ScopedBackend forced(backend);
      for (const std::size_t n : kWidths) {
        Rng rng(0xE6E ^ (n * 4u + static_cast<std::size_t>(backend)));
        std::vector<std::int64_t> cycles(n);
        for (auto& c : cycles) c = rng.uniform_int(0, cap);
        cycles[0] = 0;  // the e_zero blend lane
        if (n >= 2) cycles[1] = cap;
        std::vector<double> batch(n);
        curve.energy_cycles_batch(wpc, cycles.data(), batch.data(), n);
        for (std::size_t i = 0; i < n; ++i) {
          const double one = curve.energy(wpc * static_cast<double>(cycles[i]));
          ASSERT_TRUE(bits_equal(batch[i], one))
              << simd::to_string(backend) << " n=" << n << " cycles=" << cycles[i];
        }
      }
    }
  }
}

/// A discrete-model rejection instance (hull energy kernel engaged).
RejectionProblem hull_instance(std::uint64_t seed, int task_count = 12, double load = 1.6) {
  ScenarioConfig config;
  config.task_count = task_count;
  config.load = load;
  config.resolution = 400.0;
  config.seed = seed;
  return make_scenario(config, TablePowerModel::xscale5());
}

TEST(SimdSolvers, EveryBackendReproducesForcedScalarBitwise) {
  std::vector<std::unique_ptr<RejectionSolver>> solvers;
  solvers.push_back(std::make_unique<ExactDpSolver>());
  solvers.push_back(std::make_unique<FptasSolver>(0.1));
  solvers.push_back(std::make_unique<DensityGreedySolver>());
  solvers.push_back(std::make_unique<MarginalGreedySolver>());
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    // Both model families: continuous (relax/argmin kernels only) and
    // discrete (adds the fused hull-energy kernel).
    const std::vector<RejectionProblem> problems = {test::small_instance(seed, 12, 1.6),
                                                    hull_instance(seed)};
    for (std::size_t p = 0; p < problems.size(); ++p) {
      for (const auto& solver : solvers) {
        SCOPED_TRACE(solver->name() + " seed=" + std::to_string(seed) +
                     " problem=" + std::to_string(p));
        RejectionSolution reference;
        {
          simd::ScopedBackend forced(simd::Backend::kScalar);
          reference = solver->solve(problems[p]);
        }
        for (const simd::Backend backend : available_backends()) {
          simd::ScopedBackend forced(backend);
          const RejectionSolution got = solver->solve(problems[p]);
          EXPECT_EQ(got.accepted, reference.accepted) << simd::to_string(backend);
          EXPECT_TRUE(bits_equal(got.energy, reference.energy)) << simd::to_string(backend);
          EXPECT_TRUE(bits_equal(got.penalty, reference.penalty)) << simd::to_string(backend);
        }
      }
    }
  }
}

TEST(SimdSolvers, BudgetedDpIsBackendInvariant) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const RejectionProblem source = hull_instance(seed, 10, 1.4);
    BudgetedProblem problem{source.tasks(), source.curve(), source.work_per_cycle(),
                            /*energy_budget=*/0.6 * source.energy_of_cycles(
                                std::min(source.tasks().total_cycles(), source.cycle_capacity()))};
    BudgetedSolution reference;
    {
      simd::ScopedBackend forced(simd::Backend::kScalar);
      reference = solve_budgeted_dp(problem);
    }
    for (const simd::Backend backend : available_backends()) {
      simd::ScopedBackend forced(backend);
      const BudgetedSolution got = solve_budgeted_dp(problem);
      EXPECT_EQ(got.accepted, reference.accepted) << simd::to_string(backend);
      EXPECT_TRUE(bits_equal(got.value, reference.value)) << simd::to_string(backend);
      EXPECT_TRUE(bits_equal(got.energy, reference.energy)) << simd::to_string(backend);
    }
  }
}

/// Restores the process-wide backend on scope exit (the jobs-invariance test
/// must force worker threads too, which the thread-local override cannot).
class GlobalBackendGuard {
 public:
  explicit GlobalBackendGuard(simd::Backend forced) : saved_(simd::active_backend()) {
    simd::set_backend(forced);
  }
  ~GlobalBackendGuard() { simd::set_backend(saved_); }
  GlobalBackendGuard(const GlobalBackendGuard&) = delete;
  GlobalBackendGuard& operator=(const GlobalBackendGuard&) = delete;

 private:
  simd::Backend saved_;
};

TEST(SimdSolvers, HarnessStatsAreJobCountInvariantUnderEveryBackend) {
  const auto factory = [](std::uint64_t seed) { return hull_instance(seed, 10, 1.5); };
  const auto reference = [](const RejectionProblem& p) { return fractional_lower_bound(p); };
  for (const simd::Backend backend : available_backends()) {
    SCOPED_TRACE(std::string("backend=") + std::string(simd::to_string(backend)));
    GlobalBackendGuard forced(backend);
    std::vector<std::unique_ptr<RejectionSolver>> lineup;
    lineup.push_back(std::make_unique<DensityGreedySolver>());
    lineup.push_back(std::make_unique<FptasSolver>(0.1));
    constexpr int kInstances = 24;
    const auto sequential = run_comparison(factory, lineup, reference, kInstances, 1, /*jobs=*/1);
    const auto parallel = run_comparison(factory, lineup, reference, kInstances, 1, /*jobs=*/8);
    ASSERT_EQ(sequential.size(), parallel.size());
    for (std::size_t a = 0; a < sequential.size(); ++a) {
      SCOPED_TRACE(sequential[a].name);
      EXPECT_EQ(sequential[a].ratio.mean(), parallel[a].ratio.mean());
      EXPECT_EQ(sequential[a].ratio.variance(), parallel[a].ratio.variance());
      EXPECT_EQ(sequential[a].objective.mean(), parallel[a].objective.mean());
      EXPECT_EQ(sequential[a].objective.min(), parallel[a].objective.min());
      EXPECT_EQ(sequential[a].objective.max(), parallel[a].objective.max());
    }
  }
}

}  // namespace
}  // namespace retask
