// Unit tests for descriptive statistics.
#include "retask/common/stats.hpp"

#include <gtest/gtest.h>

#include "retask/common/error.hpp"

namespace retask {
namespace {

TEST(OnlineStats, EmptyRejectsQueries) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_THROW(s.mean(), Error);
  EXPECT_THROW(s.min(), Error);
  EXPECT_THROW(s.max(), Error);
}

TEST(OnlineStats, SingleObservation) {
  OnlineStats s;
  s.add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(OnlineStats, KnownMoments) {
  OnlineStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of the classic dataset: sum sq dev = 32, n-1 = 7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(OnlineStats, StddevIsSqrtVariance) {
  OnlineStats s;
  s.add(1.0);
  s.add(3.0);
  EXPECT_NEAR(s.stddev() * s.stddev(), s.variance(), 1e-12);
}

TEST(OnlineStats, NumericallyStableForLargeOffsets) {
  OnlineStats s;
  const double offset = 1e9;
  for (const double x : {offset + 1.0, offset + 2.0, offset + 3.0}) s.add(x);
  EXPECT_NEAR(s.mean(), offset + 2.0, 1e-3);
  EXPECT_NEAR(s.variance(), 1.0, 1e-6);
}

TEST(OnlineStats, MergeOfSingletonsMatchesSequentialAddBitForBit) {
  // The parallel harness reduces one single-observation accumulator per
  // instance in instance order; that stream must equal sequential add()s
  // exactly, not just approximately.
  const std::vector<double> xs{1.007, 2.5, 0.1, 19.25, 3.14159, 0.333};
  OnlineStats sequential;
  OnlineStats reduced;
  for (const double x : xs) {
    sequential.add(x);
    OnlineStats one;
    one.add(x);
    reduced.merge(one);
  }
  EXPECT_EQ(sequential.count(), reduced.count());
  EXPECT_EQ(sequential.mean(), reduced.mean());
  EXPECT_EQ(sequential.variance(), reduced.variance());
  EXPECT_EQ(sequential.min(), reduced.min());
  EXPECT_EQ(sequential.max(), reduced.max());
}

TEST(OnlineStats, MergeEmptyIsIdentityBothWays) {
  OnlineStats s;
  s.add(2.0);
  s.add(4.0);
  OnlineStats empty;
  s.merge(empty);
  EXPECT_EQ(s.count(), 2u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  empty.merge(s);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 3.0);
  EXPECT_DOUBLE_EQ(empty.min(), 2.0);
  EXPECT_DOUBLE_EQ(empty.max(), 4.0);
}

TEST(OnlineStats, MergeOfBlocksMatchesFlatStream) {
  // Chan's combination on multi-observation blocks: equal within numerical
  // noise (the bit-exact guarantee is only claimed for singleton merges).
  OnlineStats flat;
  OnlineStats left;
  OnlineStats right;
  for (const double x : {2.0, 4.0, 4.0, 4.0}) {
    flat.add(x);
    left.add(x);
  }
  for (const double x : {5.0, 5.0, 7.0, 9.0}) {
    flat.add(x);
    right.add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), flat.count());
  EXPECT_NEAR(left.mean(), flat.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), flat.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(left.min(), flat.min());
  EXPECT_DOUBLE_EQ(left.max(), flat.max());
}

TEST(Quantile, MedianAndExtremes) {
  const std::vector<double> v{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 5.0);
}

TEST(Quantile, InterpolatesBetweenOrderStatistics) {
  const std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(quantile(v, 0.75), 7.5);
}

TEST(Quantile, RejectsBadInput) {
  EXPECT_THROW(quantile({}, 0.5), Error);
  EXPECT_THROW(quantile({1.0}, -0.1), Error);
  EXPECT_THROW(quantile({1.0}, 1.1), Error);
}

}  // namespace
}  // namespace retask
