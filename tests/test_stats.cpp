// Unit tests for descriptive statistics.
#include "retask/common/stats.hpp"

#include <gtest/gtest.h>

#include "retask/common/error.hpp"

namespace retask {
namespace {

TEST(OnlineStats, EmptyRejectsQueries) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_THROW(s.mean(), Error);
  EXPECT_THROW(s.min(), Error);
  EXPECT_THROW(s.max(), Error);
}

TEST(OnlineStats, SingleObservation) {
  OnlineStats s;
  s.add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(OnlineStats, KnownMoments) {
  OnlineStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of the classic dataset: sum sq dev = 32, n-1 = 7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(OnlineStats, StddevIsSqrtVariance) {
  OnlineStats s;
  s.add(1.0);
  s.add(3.0);
  EXPECT_NEAR(s.stddev() * s.stddev(), s.variance(), 1e-12);
}

TEST(OnlineStats, NumericallyStableForLargeOffsets) {
  OnlineStats s;
  const double offset = 1e9;
  for (const double x : {offset + 1.0, offset + 2.0, offset + 3.0}) s.add(x);
  EXPECT_NEAR(s.mean(), offset + 2.0, 1e-3);
  EXPECT_NEAR(s.variance(), 1.0, 1e-6);
}

TEST(Quantile, MedianAndExtremes) {
  const std::vector<double> v{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 5.0);
}

TEST(Quantile, InterpolatesBetweenOrderStatistics) {
  const std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(quantile(v, 0.75), 7.5);
}

TEST(Quantile, RejectsBadInput) {
  EXPECT_THROW(quantile({}, 0.5), Error);
  EXPECT_THROW(quantile({1.0}, -0.1), Error);
  EXPECT_THROW(quantile({1.0}, 1.1), Error);
}

}  // namespace
}  // namespace retask
