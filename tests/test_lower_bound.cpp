// Tests for the fractional lower bound: validity (never above the true
// optimum), tightness on fractional-friendly instances, and multiprocessor
// behaviour.
#include "retask/core/lower_bound.hpp"

#include <gtest/gtest.h>

#include "retask/core/exact_dp.hpp"
#include "retask/core/exhaustive.hpp"
#include "test_util.hpp"

namespace retask {
namespace {

TEST(LowerBound, NeverExceedsOptimalUniproc) {
  const ExactDpSolver dp;
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    for (const double load : {0.6, 1.2, 2.0, 3.0}) {
      const RejectionProblem p = test::small_instance(seed, 10, load, 1.0);
      const double lb = fractional_lower_bound(p);
      const double opt = dp.solve(p).objective();
      EXPECT_LE(lb, opt + 1e-6 * std::max(1.0, opt)) << "seed " << seed << " load " << load;
    }
  }
}

TEST(LowerBound, NeverExceedsOptimalMultiproc) {
  const MultiProcExhaustiveSolver opt;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const RejectionProblem p = test::small_instance(seed, 8, 1.8, 1.0, 2);
    const double lb = fractional_lower_bound(p);
    const double o = opt.solve(p).objective();
    EXPECT_LE(lb, o + 1e-6 * std::max(1.0, o)) << "seed " << seed;
  }
}

TEST(LowerBound, TightWhenNoRejectionIsNeeded) {
  // Light load, huge penalties: the fractional optimum accepts everything,
  // exactly like the integral optimum.
  const RejectionProblem p = test::small_instance(3, 10, 0.7, 50.0);
  const double lb = fractional_lower_bound(p);
  const double opt = ExactDpSolver().solve(p).objective();
  EXPECT_NEAR(lb, opt, 1e-4 * opt);
}

TEST(LowerBound, TightWhenEverythingIsFree) {
  // Zero penalties: both the relaxation and the optimum reject everything.
  const FrameTaskSet tasks({{0, 50, 0.0}, {1, 70, 0.0}});
  EnergyCurve curve(PolynomialPowerModel::xscale(), 1.0, IdleDiscipline::kDormantEnable);
  const RejectionProblem p(tasks, std::move(curve), 0.01, 1);
  EXPECT_NEAR(fractional_lower_bound(p), 0.0, 1e-9);
}

TEST(LowerBound, CountsIdleEnergyOfAllProcessorsUnderDormantDisable) {
  // Dormant-disable: every processor pays leakage for the whole window even
  // when empty, so the bound must include M * E(0).
  const FrameTaskSet tasks({{0, 10, 0.001}});
  EnergyCurve curve(PolynomialPowerModel::xscale(), 1.0, IdleDiscipline::kDormantDisable);
  const RejectionProblem p(tasks, std::move(curve), 0.01, 4);
  EXPECT_GE(fractional_lower_bound(p), 4 * 0.08 - 1e-9);
}

TEST(LowerBound, MultiprocBoundNeverExceedsOptimal) {
  // The Lagrangian MP bound against the exhaustive partitioned optimum,
  // across idle disciplines. Free-sleep and dormant-disable curves are
  // convex; the bound must hold on every one of them.
  const MultiProcExhaustiveSolver opt;
  for (const IdleDiscipline idle :
       {IdleDiscipline::kDormantEnable, IdleDiscipline::kDormantDisable}) {
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      for (const int m : {2, 3}) {
        const RejectionProblem p = test::small_instance(seed, 7, 1.7, 1.0, m, idle);
        const double lb = multiproc_lower_bound(p);
        const double o = opt.solve(p).objective();
        EXPECT_LE(lb, o + 1e-6 * std::max(1.0, o)) << "seed " << seed << " m " << m;
      }
    }
  }
}

TEST(LowerBound, MultiprocBoundSoundUnderSwitchOverheads) {
  // Dormant-enable with positive switch overheads makes E non-convex (the
  // wake-up jump), which is exactly where the naive Jensen step m * E(W/m)
  // over-counts: concentrating the load on fewer PEs and keeping the rest
  // dormant beats the balanced split. The bound must route through the
  // convex floor and stay below the exhaustive optimum.
  const MultiProcExhaustiveSolver opt;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    ScenarioConfig config;
    config.task_count = 7;
    config.load = 0.9;
    config.resolution = 300.0;
    config.penalty_scale = 0.6;
    config.processor_count = 3;
    config.seed = seed;
    RejectionProblem base = make_scenario(config, PolynomialPowerModel::xscale());
    EnergyCurve curve(base.curve().model(), base.curve().window(),
                      IdleDiscipline::kDormantEnable, SleepParams{0.13, 0.065});
    EXPECT_FALSE(curve.convex());
    const RejectionProblem p(FrameTaskSet(base.tasks()), std::move(curve),
                             base.work_per_cycle(), 3);
    const double lb = multiproc_lower_bound(p);
    const double o = opt.solve(p).objective();
    EXPECT_LE(lb, o + 1e-6 * std::max(1.0, o)) << "seed " << seed;
  }
}

TEST(LowerBound, MultiprocBoundPricesOversizedTasks) {
  // A task larger than one processor's window is rejected in every
  // partitioned solution; the MP bound charges its penalty up front and so
  // strictly dominates the plain fractional bound here.
  const FrameTaskSet tasks({{0, 900, 2.0}, {1, 120, 0.4}, {2, 150, 0.5}});
  EnergyCurve curve(PolynomialPowerModel::xscale(), 1.0, IdleDiscipline::kDormantEnable);
  const RejectionProblem p(tasks, std::move(curve), 1.0 / 400.0, 2);
  const MultiProcBound bound = multiproc_lower_bound_detail(p);
  EXPECT_EQ(bound.forced_count, 1u);
  EXPECT_DOUBLE_EQ(bound.forced_penalty, 2.0);
  EXPECT_GE(bound.value, fractional_lower_bound(p) - 1e-12);
  EXPECT_GE(bound.value, 2.0);
}

TEST(LowerBound, MultiprocBoundMatchesFractionalWithoutOversizedTasks) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const RejectionProblem p = test::small_instance(seed, 9, 1.9, 1.0, 3);
    bool oversized = false;
    for (const FrameTask& task : p.tasks().tasks()) {
      oversized = oversized || task.cycles > p.cycle_capacity();
    }
    if (oversized) continue;
    EXPECT_EQ(multiproc_lower_bound(p), fractional_lower_bound(p)) << "seed " << seed;
  }
}

TEST(LowerBound, IncreasesWithPenaltyScale) {
  const RejectionProblem cheap = test::small_instance(9, 10, 2.0, 0.3);
  const RejectionProblem dear = test::small_instance(9, 10, 2.0, 3.0);
  EXPECT_LT(fractional_lower_bound(cheap), fractional_lower_bound(dear));
}

}  // namespace
}  // namespace retask
