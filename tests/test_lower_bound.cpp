// Tests for the fractional lower bound: validity (never above the true
// optimum), tightness on fractional-friendly instances, and multiprocessor
// behaviour.
#include "retask/core/lower_bound.hpp"

#include <gtest/gtest.h>

#include "retask/core/exact_dp.hpp"
#include "retask/core/exhaustive.hpp"
#include "test_util.hpp"

namespace retask {
namespace {

TEST(LowerBound, NeverExceedsOptimalUniproc) {
  const ExactDpSolver dp;
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    for (const double load : {0.6, 1.2, 2.0, 3.0}) {
      const RejectionProblem p = test::small_instance(seed, 10, load, 1.0);
      const double lb = fractional_lower_bound(p);
      const double opt = dp.solve(p).objective();
      EXPECT_LE(lb, opt + 1e-6 * std::max(1.0, opt)) << "seed " << seed << " load " << load;
    }
  }
}

TEST(LowerBound, NeverExceedsOptimalMultiproc) {
  const MultiProcExhaustiveSolver opt;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const RejectionProblem p = test::small_instance(seed, 8, 1.8, 1.0, 2);
    const double lb = fractional_lower_bound(p);
    const double o = opt.solve(p).objective();
    EXPECT_LE(lb, o + 1e-6 * std::max(1.0, o)) << "seed " << seed;
  }
}

TEST(LowerBound, TightWhenNoRejectionIsNeeded) {
  // Light load, huge penalties: the fractional optimum accepts everything,
  // exactly like the integral optimum.
  const RejectionProblem p = test::small_instance(3, 10, 0.7, 50.0);
  const double lb = fractional_lower_bound(p);
  const double opt = ExactDpSolver().solve(p).objective();
  EXPECT_NEAR(lb, opt, 1e-4 * opt);
}

TEST(LowerBound, TightWhenEverythingIsFree) {
  // Zero penalties: both the relaxation and the optimum reject everything.
  const FrameTaskSet tasks({{0, 50, 0.0}, {1, 70, 0.0}});
  EnergyCurve curve(PolynomialPowerModel::xscale(), 1.0, IdleDiscipline::kDormantEnable);
  const RejectionProblem p(tasks, std::move(curve), 0.01, 1);
  EXPECT_NEAR(fractional_lower_bound(p), 0.0, 1e-9);
}

TEST(LowerBound, CountsIdleEnergyOfAllProcessorsUnderDormantDisable) {
  // Dormant-disable: every processor pays leakage for the whole window even
  // when empty, so the bound must include M * E(0).
  const FrameTaskSet tasks({{0, 10, 0.001}});
  EnergyCurve curve(PolynomialPowerModel::xscale(), 1.0, IdleDiscipline::kDormantDisable);
  const RejectionProblem p(tasks, std::move(curve), 0.01, 4);
  EXPECT_GE(fractional_lower_bound(p), 4 * 0.08 - 1e-9);
}

TEST(LowerBound, IncreasesWithPenaltyScale) {
  const RejectionProblem cheap = test::small_instance(9, 10, 2.0, 0.3);
  const RejectionProblem dear = test::small_instance(9, 10, 2.0, 3.0);
  EXPECT_LT(fractional_lower_bound(cheap), fractional_lower_bound(dear));
}

}  // namespace
}  // namespace retask
