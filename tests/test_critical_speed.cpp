// Unit tests for the critical-speed solver against the closed form.
#include "retask/power/critical_speed.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "retask/power/polynomial_power.hpp"
#include "retask/power/table_power.hpp"

namespace retask {
namespace {

TEST(CriticalSpeed, MatchesClosedFormForXscale) {
  const PolynomialPowerModel m = PolynomialPowerModel::xscale();
  EXPECT_NEAR(critical_speed(m), m.analytic_critical_speed(), 1e-6);
}

TEST(CriticalSpeed, PureDynamicModelPrefersSlowest) {
  // With beta1 = 0 energy per cycle is s^2: minimized at the range bottom.
  const PolynomialPowerModel m(0.0, 1.0, 3.0, 0.1, 1.0);
  EXPECT_NEAR(critical_speed(m), 0.1, 1e-6);
}

TEST(CriticalSpeed, HighLeakagePushesCriticalSpeedUp) {
  const PolynomialPowerModel low(0.05, 1.52, 3.0, 0.0, 1.0);
  const PolynomialPowerModel high(0.4, 1.52, 3.0, 0.0, 1.0);
  EXPECT_GT(critical_speed(high), critical_speed(low));
}

TEST(CriticalSpeed, ClampedToTopSpeedWhenLeakageDominates) {
  // Huge leakage: the unconstrained critical speed exceeds smax, so the
  // constrained optimum is smax itself.
  const PolynomialPowerModel m(100.0, 1.0, 3.0, 0.0, 1.0);
  EXPECT_GT(m.analytic_critical_speed(), 1.0);
  EXPECT_NEAR(critical_speed(m), 1.0, 1e-6);
}

TEST(CriticalSpeed, TableModelScansOperatingPoints) {
  const TablePowerModel m = TablePowerModel::xscale5();
  // Energy per cycle at the five speeds; 0.4 is the minimizer for the
  // XScale-normalized curve (analytic critical speed ~0.297, nearest menu
  // point by energy-per-cycle comparison).
  double best_s = 0.0;
  double best = 1e9;
  for (const double s : m.available_speeds()) {
    const double epc = m.energy_per_cycle(s);
    if (epc < best) {
      best = epc;
      best_s = s;
    }
  }
  EXPECT_DOUBLE_EQ(critical_speed(m), best_s);
}

TEST(CriticalSpeed, SingleSpeedTableReturnsThatSpeed) {
  const TablePowerModel m({{0.7, 0.9}}, 0.1);
  EXPECT_DOUBLE_EQ(critical_speed(m), 0.7);
}

}  // namespace
}  // namespace retask
