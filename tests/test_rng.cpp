// Unit tests for the deterministic RNG.
#include "retask/common/rng.hpp"

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "retask/common/error.hpp"

namespace retask {
namespace {

TEST(Rng, DeterministicForFixedSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a() == b()) ? 1 : 0;
  EXPECT_LT(equal, 4);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-2.0, 5.0);
    EXPECT_GE(x, -2.0);
    EXPECT_LT(x, 5.0);
  }
  EXPECT_THROW(rng.uniform(1.0, 0.0), Error);
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all five values appear
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(5);
  EXPECT_EQ(rng.uniform_int(9, 9), 9);
}

TEST(Rng, LogUniformStaysInRange) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.log_uniform(1.0, 8.0);
    EXPECT_GE(x, 1.0);
    EXPECT_LT(x, 8.0 + 1e-9);
  }
  EXPECT_THROW(rng.log_uniform(0.0, 1.0), Error);
}

TEST(Rng, NormalHasRequestedMoments) {
  Rng rng(17);
  double sum = 0.0;
  double sum2 = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(10.0, 2.0);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.1);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(23);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(Rng, StreamSeedPinsTheDerivation) {
  // The (base, stream) derivation is part of the reproducibility contract:
  // the stochastic sweep seeds instance k's trajectory stream with
  // stream_seed(base, k), so these exact values may never change.
  EXPECT_EQ(Rng::stream_seed(1, 0), 0x910a2dec89025cc1ULL);
  EXPECT_EQ(Rng::stream_seed(1, 1), 0xbeeb8da1658eec67ULL);
  EXPECT_EQ(Rng::stream_seed(42, 7), 0xccf635ee9e9e2fa4ULL);
  EXPECT_EQ(Rng::stream_seed(0, 0), 0xe220a8397b1dcdafULL);
}

TEST(Rng, StreamSeedsAreDistinctAcrossStreamsAndBases) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t base : {1ULL, 2ULL, 42ULL, 1000003ULL}) {
    for (std::uint64_t stream = 0; stream < 256; ++stream) {
      seen.insert(Rng::stream_seed(base, stream));
    }
  }
  EXPECT_EQ(seen.size(), 4u * 256u);
}

TEST(Rng, StreamSeededGeneratorsDiverge) {
  Rng a(Rng::stream_seed(9, 0));
  Rng b(Rng::stream_seed(9, 1));
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a() == b()) ? 1 : 0;
  EXPECT_LT(equal, 4);
}

TEST(Rng, ShuffleChangesOrderEventually) {
  Rng rng(29);
  std::vector<int> v(32);
  for (int i = 0; i < 32; ++i) v[static_cast<std::size_t>(i)] = i;
  const std::vector<int> original = v;
  rng.shuffle(v);
  EXPECT_NE(v, original);  // probability of identity is astronomically small
}

}  // namespace
}  // namespace retask
