// Tests for the leakage-aware consolidation solver and the sleep-overhead
// problem plumbing.
#include "retask/core/leakage_aware.hpp"

#include <gtest/gtest.h>

#include "retask/core/exhaustive.hpp"
#include "retask/core/lower_bound.hpp"
#include "retask/core/multiproc.hpp"
#include "retask/power/polynomial_power.hpp"
#include "test_util.hpp"

namespace retask {
namespace {

/// Many-processor instance with per-wake overheads: a handful of small,
/// valuable tasks that LTF spreads one-per-processor.
RejectionProblem sleepy_instance(std::uint64_t seed, int tasks, int processors,
                                 double switch_energy) {
  ScenarioConfig config;
  config.task_count = tasks;
  // Light per-processor load so every task runs at the critical speed.
  config.load = 0.15 * processors;
  config.resolution = 400.0;
  config.penalty_scale = 20.0;  // keep everything: this is about placement
  config.processor_count = processors;
  config.seed = seed;
  const PolynomialPowerModel model = PolynomialPowerModel::xscale();
  RejectionProblem base = make_scenario(config, model);
  // Rebind the curve with sleep overheads.
  return RejectionProblem(base.tasks(),
                          EnergyCurve(model, base.curve().window(), IdleDiscipline::kDormantEnable,
                                      SleepParams{0.0, switch_energy}),
                          base.work_per_cycle(), processors);
}

TEST(StripSleep, RemovesOverheadsOnly) {
  const RejectionProblem p = sleepy_instance(1, 6, 4, 0.05);
  const RejectionProblem stripped = strip_sleep_overheads(p);
  EXPECT_TRUE(stripped.curve().sleep().free());
  EXPECT_EQ(stripped.size(), p.size());
  EXPECT_EQ(stripped.processor_count(), p.processor_count());
  // Stripping can only lower the energy of any fixed load.
  for (const Cycles load : {Cycles{0}, Cycles{30}, Cycles{120}}) {
    EXPECT_LE(stripped.energy_of_cycles(load), p.energy_of_cycles(load) + 1e-12);
  }
}

TEST(LeakageAware, ConsolidatesLightLoadsUnderWakeCost) {
  const RejectionProblem p = sleepy_instance(2, 6, 6, 0.05);
  const RejectionSolution spread = MultiProcLtfRejectSolver().solve(p);
  const RejectionSolution packed = LeakageAwareLtfFfSolver().solve(p);
  check_solution(p, packed);
  // LTF wakes many processors; consolidation must strictly beat it here.
  EXPECT_LT(packed.objective(), spread.objective());
  // The packed schedule uses fewer woken processors.
  int woken_spread = 0;
  int woken_packed = 0;
  for (const Cycles load : processor_loads(p, spread)) woken_spread += load > 0 ? 1 : 0;
  for (const Cycles load : processor_loads(p, packed)) woken_packed += load > 0 ? 1 : 0;
  EXPECT_LT(woken_packed, woken_spread);
}

TEST(LeakageAware, NoWorseThanLtfOnFreeSleep) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const RejectionProblem p = test::small_instance(seed, 12, 2.0, 1.0, 3);
    const double ltf = MultiProcLtfRejectSolver().solve(p).objective();
    const double la = LeakageAwareLtfFfSolver().solve(p).objective();
    EXPECT_LE(la, ltf + 1e-9) << "seed " << seed;
  }
}

TEST(LeakageAware, NeverBeatsStrippedLowerBound) {
  // Lower bound on the free-sleep relaxation is a valid lower bound for the
  // overhead problem.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const RejectionProblem p = sleepy_instance(seed, 8, 4, 0.03);
    const double lb = fractional_lower_bound(strip_sleep_overheads(p));
    const double la = LeakageAwareLtfFfSolver().solve(p).objective();
    EXPECT_GE(la, lb - 1e-9) << "seed " << seed;
  }
}

TEST(LeakageAware, MatchesExhaustiveOnTinyInstances) {
  // Sanity on optimality gap: within a modest factor of the multiprocessor
  // exhaustive optimum under overheads.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const RejectionProblem p = sleepy_instance(seed, 7, 2, 0.04);
    const double opt = MultiProcExhaustiveSolver().solve(p).objective();
    const double la = LeakageAwareLtfFfSolver().solve(p).objective();
    EXPECT_GE(la, opt - 1e-9);
    EXPECT_LE(la, 2.0 * opt + 1e-9) << "seed " << seed;  // the LA+FF pedigree bound
  }
}

TEST(LeakageAware, SingleProcessorDegeneratesToDp) {
  const RejectionProblem p = test::small_instance(3, 10, 1.5);
  const double dp = MultiProcLtfRejectSolver().solve(p).objective();
  const double la = LeakageAwareLtfFfSolver().solve(p).objective();
  EXPECT_NEAR(la, dp, 1e-12);
}

}  // namespace
}  // namespace retask
