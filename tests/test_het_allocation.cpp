// Tests for heterogeneous processor-type allocation: validation, packing,
// bounds, Lagrangian-vs-exhaustive gap, and cost/energy trade behaviour.
#include "retask/core/het_allocation.hpp"

#include <gtest/gtest.h>

#include "retask/common/error.hpp"
#include "retask/common/rng.hpp"

namespace retask {
namespace {

ProcessorType cheap_slow() {
  // Low-power, low-cost part: speeds 0.25/0.5, modest power.
  return {"cheap", 1.0, TablePowerModel({{0.25, 0.05}, {0.5, 0.25}}, 0.0)};
}

ProcessorType fast_expensive() {
  // Fast part: speeds 0.5/1.0, higher power, triple cost.
  return {"fast", 3.0, TablePowerModel({{0.5, 0.2}, {1.0, 1.6}}, 0.0)};
}

HetAllocationProblem demo_problem(double budget, int n = 5, std::uint64_t seed = 1) {
  HetAllocationProblem problem;
  problem.types = {cheap_slow(), fast_expensive()};
  // Window 100 time units: the fast part executes up to 100 cycles per
  // frame, the cheap one up to 50.
  problem.window = 100.0;
  problem.energy_budget = budget;
  Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    // The fast part needs ~20% fewer cycles (better ISA fit).
    const Cycles base = rng.uniform_int(10, 40);
    problem.tasks.push_back(
        {i, {base, std::max<Cycles>(1, static_cast<Cycles>(0.8 * static_cast<double>(base)))}});
  }
  return problem;
}

TEST(HetAllocation, Validation) {
  HetAllocationProblem p = demo_problem(10.0);
  EXPECT_NO_THROW(validate(p));
  p.energy_budget = 0.0;
  EXPECT_THROW(validate(p), Error);
  p = demo_problem(10.0);
  p.tasks[0].cycles_per_type = {10};  // wrong arity
  EXPECT_THROW(validate(p), Error);
  p = demo_problem(10.0);
  p.tasks[0].cycles_per_type = {500, 500};  // fits nowhere (caps 50 and 100)
  EXPECT_THROW(validate(p), Error);
}

TEST(HetAllocation, UtilizationAndEnergyFormulas) {
  const HetAllocationProblem p = demo_problem(10.0);
  // Type 0 speed 0 = 0.25: u = c / (0.25 * 100), energy = (c/0.25) * 0.05.
  const double c = static_cast<double>(p.tasks[0].cycles_per_type[0]);
  EXPECT_NEAR(het_utilization(p, 0, 0, 0), c / 25.0, 1e-12);
  EXPECT_NEAR(het_energy(p, 0, 0, 0), (c / 0.25) * 0.05, 1e-12);
}

TEST(HetAllocation, LagrangianMeetsBudgetAndValidates) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const HetAllocationProblem p = demo_problem(80.0, 6, seed);
    const HetAllocationResult r = allocate_het_lagrangian(p);
    check_het_allocation(p, r);
    EXPECT_GE(r.cost, het_cost_lower_bound(p) - 1e-9);
  }
}

TEST(HetAllocation, ExhaustiveIsOptimalAndBoundsHold) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const HetAllocationProblem p = demo_problem(60.0, 5, seed);
    const HetAllocationResult opt = allocate_het_exhaustive(p);
    const HetAllocationResult heur = allocate_het_lagrangian(p);
    check_het_allocation(p, opt);
    EXPECT_LE(het_cost_lower_bound(p), opt.cost + 1e-9) << "seed " << seed;
    EXPECT_GE(heur.cost, opt.cost - 1e-9) << "seed " << seed;
    // The Lagrangian surrogate should stay within a small constant factor on
    // these two-type instances.
    EXPECT_LE(heur.cost, 2.0 * opt.cost + 1e-9) << "seed " << seed;
  }
}

TEST(HetAllocation, TightBudgetForcesExpensiveEfficientParts) {
  // Cheap-slow parts burn 0.2 J per cycle-at-0.25 here? Construct: generous
  // budget -> everything on cheap parts; tiny budget -> must use the
  // low-energy-per-cycle option regardless of cost.
  HetAllocationProblem p = demo_problem(1e6, 5, 3);
  const HetAllocationResult roomy = allocate_het_lagrangian(p);
  // With energy no object the cheapest cost wins: only cheap parts.
  for (const HetPlacement& place : roomy.placement) EXPECT_EQ(place.type, 0);

  // Now squeeze the budget to just above the minimum achievable energy.
  double e_min = 0.0;
  for (std::size_t i = 0; i < p.tasks.size(); ++i) {
    double cheapest = 1e300;
    for (std::size_t j = 0; j < p.types.size(); ++j) {
      for (std::size_t l = 0; l < p.types[j].model.available_speeds().size(); ++l) {
        if (het_utilization(p, i, j, l) <= 1.0) {
          cheapest = std::min(cheapest, het_energy(p, i, j, l));
        }
      }
    }
    e_min += cheapest;
  }
  p.energy_budget = e_min * 1.05;
  const HetAllocationResult tight = allocate_het_lagrangian(p);
  check_het_allocation(p, tight);
  EXPECT_LE(tight.energy, p.energy_budget + 1e-9);
}

TEST(HetAllocation, ImpossibleBudgetThrows) {
  HetAllocationProblem p = demo_problem(1e-6, 4, 2);
  EXPECT_THROW(allocate_het_lagrangian(p), Error);
  EXPECT_THROW(allocate_het_exhaustive(p), Error);
}

TEST(HetAllocation, ExhaustiveGuardsHugeInstances) {
  const HetAllocationProblem p = demo_problem(200.0, 12, 1);
  EXPECT_THROW(allocate_het_exhaustive(p), Error);
}

TEST(HetAllocation, CheckDetectsTampering) {
  const HetAllocationProblem p = demo_problem(60.0, 5, 4);
  HetAllocationResult r = allocate_het_lagrangian(p);
  EXPECT_NO_THROW(check_het_allocation(p, r));
  r.cost += 1.0;
  EXPECT_THROW(check_het_allocation(p, r), Error);
}

TEST(HetAllocation, CostNeverIncreasesWithBudget) {
  HetAllocationProblem base = demo_problem(1.0, 6, 5);
  // Anchor budgets to the instance's true minimum energy so every point is
  // feasible regardless of the seed's draw.
  double e_min = 0.0;
  for (std::size_t i = 0; i < base.tasks.size(); ++i) {
    double cheapest = 1e300;
    for (std::size_t j = 0; j < base.types.size(); ++j) {
      for (std::size_t l = 0; l < base.types[j].model.available_speeds().size(); ++l) {
        base.energy_budget = 1.0;  // validation only needs positivity
        if (het_utilization(base, i, j, l) <= 1.0) {
          cheapest = std::min(cheapest, het_energy(base, i, j, l));
        }
      }
    }
    e_min += cheapest;
  }
  double prev = 1e300;
  for (const double factor : {1.02, 1.3, 2.0, 20.0}) {
    HetAllocationProblem p = base;
    p.energy_budget = e_min * factor;
    const double cost = allocate_het_exhaustive(p).cost;
    EXPECT_LE(cost, prev + 1e-9) << "factor " << factor;
    prev = cost;
  }
}

}  // namespace
}  // namespace retask
