// Unit tests for the speed-schedule timeline.
#include "retask/sched/speed_schedule.hpp"

#include <gtest/gtest.h>

#include "retask/common/error.hpp"
#include "retask/power/polynomial_power.hpp"

namespace retask {
namespace {

TEST(SpeedSchedule, AppendAndTotals) {
  SpeedSchedule s;
  s.append(1.0, 2.0);
  s.append(0.5, 4.0);
  s.append(0.0, 1.0);
  EXPECT_DOUBLE_EQ(s.end_time(), 7.0);
  EXPECT_DOUBLE_EQ(s.total_cycles(), 2.0 + 2.0);
}

TEST(SpeedSchedule, ZeroDurationSegmentsAreDropped) {
  SpeedSchedule s;
  s.append(1.0, 0.0);
  EXPECT_TRUE(s.segments().empty());
}

TEST(SpeedSchedule, RejectsNegativeInputs) {
  SpeedSchedule s;
  EXPECT_THROW(s.append(-1.0, 1.0), Error);
  EXPECT_THROW(s.append(1.0, -1.0), Error);
}

TEST(SpeedSchedule, CyclesByTime) {
  SpeedSchedule s;
  s.append(2.0, 1.0);  // 2 cycles
  s.append(0.0, 1.0);  // idle
  s.append(1.0, 2.0);  // 2 cycles
  EXPECT_DOUBLE_EQ(s.cycles_by(0.5), 1.0);
  EXPECT_DOUBLE_EQ(s.cycles_by(1.0), 2.0);
  EXPECT_DOUBLE_EQ(s.cycles_by(1.7), 2.0);
  EXPECT_DOUBLE_EQ(s.cycles_by(3.0), 3.0);
  EXPECT_DOUBLE_EQ(s.cycles_by(100.0), 4.0);  // clamped to the end
}

TEST(SpeedSchedule, TimeToCyclesInvertsCyclesBy) {
  SpeedSchedule s;
  s.append(2.0, 1.0);
  s.append(0.0, 1.0);
  s.append(1.0, 2.0);
  EXPECT_DOUBLE_EQ(s.time_to_cycles(0.0), 0.0);
  EXPECT_DOUBLE_EQ(s.time_to_cycles(1.0), 0.5);
  EXPECT_DOUBLE_EQ(s.time_to_cycles(2.0), 1.0);
  EXPECT_DOUBLE_EQ(s.time_to_cycles(3.0), 3.0);  // idle gap skipped
  EXPECT_DOUBLE_EQ(s.time_to_cycles(4.0), 4.0);
  EXPECT_THROW(s.time_to_cycles(4.5), Error);
  EXPECT_THROW(s.time_to_cycles(-1.0), Error);
}

TEST(SpeedSchedule, FromPlanPutsFastWorkFirst) {
  ExecutionPlan plan;
  plan.segments = {{0.0, 0.3}, {0.5, 1.0}, {1.0, 0.5}};
  const SpeedSchedule s = SpeedSchedule::from_plan(plan);
  ASSERT_EQ(s.segments().size(), 3u);
  EXPECT_DOUBLE_EQ(s.segments()[0].speed, 1.0);
  EXPECT_DOUBLE_EQ(s.segments()[1].speed, 0.5);
  EXPECT_DOUBLE_EQ(s.segments()[2].speed, 0.0);
  EXPECT_DOUBLE_EQ(s.total_cycles(), 1.0);
  EXPECT_DOUBLE_EQ(s.end_time(), 1.8);
}

TEST(SpeedSchedule, EnergyMatchesCurveAccounting) {
  const PolynomialPowerModel m = PolynomialPowerModel::xscale();
  const EnergyCurve curve(m, 2.0, IdleDiscipline::kDormantDisable);
  SpeedSchedule s;
  s.append(0.5, 1.0);
  s.append(0.0, 1.0);
  const double expected = m.power(0.5) * 1.0 + m.static_power() * 1.0;
  EXPECT_NEAR(s.energy(curve), expected, 1e-12);

  const EnergyCurve sleepy(m, 2.0, IdleDiscipline::kDormantEnable);
  EXPECT_NEAR(s.energy(sleepy), m.power(0.5) * 1.0, 1e-12);
}

}  // namespace
}  // namespace retask
