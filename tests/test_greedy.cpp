// Tests for the heuristic and baseline solvers: feasibility on every
// instance, dominance ordering, and behaviour at the penalty extremes.
#include "retask/core/greedy.hpp"

#include <algorithm>

#include <gtest/gtest.h>

#include "retask/common/error.hpp"
#include "retask/core/exact_dp.hpp"
#include "test_util.hpp"

namespace retask {
namespace {

TEST(AllAccept, KeepsEverythingWhenFeasible) {
  const RejectionProblem p = test::small_instance(1, 10, 0.8);
  const RejectionSolution s = AllAcceptSolver().solve(p);
  EXPECT_EQ(s.accepted_count(), p.size());
  EXPECT_NEAR(s.penalty, 0.0, 1e-12);
}

TEST(AllAccept, ShedsCheapestDensityUnderOverload) {
  const RejectionProblem p = test::small_instance(2, 10, 2.0);
  const RejectionSolution s = AllAcceptSolver().solve(p);
  EXPECT_LT(s.accepted_count(), p.size());
  EXPECT_LE(p.accepted_cycles(s.accepted), p.cycle_capacity());
}

TEST(Greedy, NeverBeatsOptimal) {
  const ExactDpSolver dp;
  const DensityGreedySolver greedy;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const RejectionProblem p = test::small_instance(seed, 10, 1.6);
    EXPECT_GE(greedy.solve(p).objective(), dp.solve(p).objective() - 1e-9) << "seed " << seed;
  }
}

TEST(Greedy, RejectsFreeTasks) {
  // Penalty-free tasks should all be rejected (pure energy saving).
  const FrameTaskSet tasks({{0, 30, 0.0}, {1, 40, 0.0}, {2, 20, 100.0}});
  EnergyCurve curve(PolynomialPowerModel::xscale(), 1.0, IdleDiscipline::kDormantEnable);
  const RejectionProblem p(tasks, std::move(curve), 0.01, 1);
  const RejectionSolution s = DensityGreedySolver().solve(p);
  EXPECT_FALSE(s.accepted[0]);
  EXPECT_FALSE(s.accepted[1]);
  EXPECT_TRUE(s.accepted[2]);
}

TEST(LocalSearch, NeverWorseThanItsDensitySeed) {
  const DensityGreedySolver seed_solver;
  const MarginalGreedySolver ls;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const RejectionProblem p = test::small_instance(seed, 12, 1.8, 1.5);
    EXPECT_LE(ls.solve(p).objective(), seed_solver.solve(p).objective() + 1e-9)
        << "seed " << seed;
  }
}

TEST(LocalSearch, ObjectiveStaysConsistentOverLongFlipSequences) {
  // Regression: the local search used to carry the objective incrementally
  // (objective += best_delta), so float drift across many flips could let
  // "improvements" smaller than the accumulated error cycle forever and
  // return a state worse than its seed. Large instances force long flip
  // sequences; the reported objective must match an independent
  // recomputation and never regress below the density seed.
  const DensityGreedySolver seed_solver;
  const MarginalGreedySolver ls;
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    const RejectionProblem p = test::small_instance(seed, 40, 1.3, 0.8);
    const RejectionSolution s = ls.solve(p);
    const double recomputed = p.energy_of_cycles(p.accepted_cycles(s.accepted)) +
                              p.rejected_penalty(s.accepted);
    EXPECT_NEAR(s.objective(), recomputed, 1e-9 * std::max(1.0, recomputed)) << "seed " << seed;
    EXPECT_LE(s.objective(), seed_solver.solve(p).objective() + 1e-9) << "seed " << seed;
    // Deterministic: re-solving lands on the identical accept mask.
    EXPECT_EQ(ls.solve(p).accepted, s.accepted) << "seed " << seed;
  }
}

TEST(LocalSearch, KeepsValuableSmallTasksUnderOverload) {
  // Two large low-penalty tasks and many small high-penalty ones: the right
  // answer sheds the large tasks and keeps every small one.
  std::vector<FrameTask> tasks;
  tasks.push_back({0, 60, 0.05});
  tasks.push_back({1, 60, 0.05});
  for (int i = 2; i < 8; ++i) tasks.push_back({i, 10, 0.4});
  EnergyCurve curve(PolynomialPowerModel::cubic(), 1.0, IdleDiscipline::kDormantEnable);
  const RejectionProblem p(FrameTaskSet(std::move(tasks)), std::move(curve), 0.01, 1);
  const MarginalGreedySolver ls;
  const RejectionSolution s = ls.solve(p);
  // All six small tasks are worth keeping: energy of 0.6 work = 0.216 while
  // their combined penalty is 2.4.
  for (int i = 2; i < 8; ++i) EXPECT_TRUE(s.accepted[static_cast<std::size_t>(i)]) << i;
}

TEST(Rand, ProducesFeasibleDeterministicSolutions) {
  const RandomRejectSolver rand_solver(7);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const RejectionProblem p = test::small_instance(seed, 10, 2.2);
    const RejectionSolution a = rand_solver.solve(p);
    const RejectionSolution b = rand_solver.solve(p);
    EXPECT_LE(p.accepted_cycles(a.accepted), p.cycle_capacity());
    EXPECT_EQ(a.accepted, b.accepted);  // deterministic for fixed seed
  }
}

TEST(Rand, AcceptsAllWhenFeasible) {
  const RejectionProblem p = test::small_instance(4, 10, 0.6);
  const RejectionSolution s = RandomRejectSolver().solve(p);
  EXPECT_EQ(s.accepted_count(), p.size());
}

TEST(SingleProcSolvers, GuardMultiprocessorInstances) {
  const RejectionProblem p = test::small_instance(1, 8, 1.0, 1.0, 3);
  EXPECT_THROW(AllAcceptSolver().solve(p), Error);
  EXPECT_THROW(DensityGreedySolver().solve(p), Error);
  EXPECT_THROW(MarginalGreedySolver().solve(p), Error);
  EXPECT_THROW(RandomRejectSolver().solve(p), Error);
}

TEST(HeuristicOrdering, HoldsOnAverageAcrossInstances) {
  // Aggregate objective: OPT <= LS <= GREEDY <= RAND-ish. RAND can win on
  // individual instances by luck, so compare sums.
  const ExactDpSolver dp;
  const MarginalGreedySolver ls;
  const DensityGreedySolver greedy;
  const RandomRejectSolver rnd;
  double sum_opt = 0.0;
  double sum_ls = 0.0;
  double sum_greedy = 0.0;
  double sum_rand = 0.0;
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    const RejectionProblem p = test::small_instance(seed, 12, 1.8, 1.2);
    sum_opt += dp.solve(p).objective();
    sum_ls += ls.solve(p).objective();
    sum_greedy += greedy.solve(p).objective();
    sum_rand += rnd.solve(p).objective();
  }
  EXPECT_LE(sum_opt, sum_ls + 1e-9);
  EXPECT_LE(sum_ls, sum_greedy + 1e-9);
  EXPECT_LE(sum_greedy, sum_rand + 1e-9);
}

}  // namespace
}  // namespace retask
