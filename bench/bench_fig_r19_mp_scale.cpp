// Fig. R19 — Many-core scale-up: MP-SCALE vs the toy-scale global greedy.
//
// M sweeps 16 -> 512 processors at fixed n = 10^4 tasks, per-PE load 0.75.
// Each point reports, per solver, the mean objective ratio to the
// multiprocessor Lagrangian bound and the solve throughput (instances/sec),
// plus the MP-SCALE / MP-GREEDY throughput speedup and MP-SCALE's median
// relative bound gap. The quality columns are bit-identical at any
// RETASK_JOBS / RETASK_BATCH / SIMD backend (the mp-scale invariance
// contract); the throughput columns are wall-clock and machine-dependent.
//
// Expected shape: both solvers stay within a few percent of the bound (the
// gap includes the bound's integrality slack), and the speedup grows with M.
// The greedy probes all M processors per task and re-probes them across its
// improvement passes (O(n m) memo probes), while MP-SCALE's dominant cost —
// the per-PE exact relaxations, n/m tasks times an O(resolution) table each
// — is independent of M, so sweeping M at fixed n isolates exactly the
// many-core regime the solver exists for. (Fixed n is also forced by the
// generator's >= 1 cycle per task floor: growing n grows the table width
// with it, which would conflate the two axes.)
//
// `--smoke` runs a miniature grid (the tier-1 mp_scale_smoke ctest leg).
#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace retask;
  const bool smoke = argc > 1 && std::string(argv[1]) == "--smoke";

  const PolynomialPowerModel model = PolynomialPowerModel::xscale();

  struct Point {
    int m = 0;
    int n = 0;
    int instances = 0;
  };
  const std::vector<Point> grid =
      smoke ? std::vector<Point>{{8, 300, 2}, {32, 1200, 2}}
            : std::vector<Point>{{16, 10000, 4}, {64, 10000, 4}, {256, 10000, 3},
                                 {512, 10000, 3}};

  std::cout << "Fig. R19" << (smoke ? " (smoke grid)" : "")
            << ": many-core scale-up, MP-SCALE vs MP-GREEDY\n"
               "(XScale ideal DVS, dormant-enable, per-PE load 0.75, ratio = objective /\n"
               " multiprocessor Lagrangian bound, gap50 = MP-SCALE median relative gap)\n\n";

  Table table("Fig R19 - many-core scale-up (per-PE load 0.75)",
              {"M", "n", "SCALE ratio", "SCALE inst/s", "GREEDY ratio", "GREEDY inst/s",
               "speedup", "gap50 %"});
  for (const Point& point : grid) {
    MpScaleSweepConfig config;
    config.scenario.task_count = point.n;
    config.scenario.load = 0.75 * point.m;
    // The generator needs >= 1 cycle per task; keep the per-PE DP capacity
    // (== resolution cycles) as small as the task count allows.
    config.scenario.resolution = std::max(1000.0, static_cast<double>(point.n));
    config.scenario.penalty_scale = 1.0;
    config.scenario.processor_count = point.m;
    config.solvers = {"mp-scale", "mp-greedy"};
    config.instances = point.instances;
    const MpScaleSweepResult result = run_mp_scale_sweep(config, model);
    const MpScaleSolverStats& scale = result.solvers[0];
    const MpScaleSolverStats& greedy = result.solvers[1];
    const double speedup = greedy.instances_per_sec > 0.0
                               ? scale.instances_per_sec / greedy.instances_per_sec
                               : 0.0;
    table.add_row({static_cast<double>(point.m), static_cast<double>(point.n),
                   scale.bound_ratio.mean(), scale.instances_per_sec, greedy.bound_ratio.mean(),
                   greedy.instances_per_sec, speedup, 100.0 * quantile(scale.gaps, 0.5)},
                  3);
  }
  bench::print_table(table);
  return 0;
}
