// Fig. R4 — Multiprocessor rejection scheduling.
//
// Panel (a), venue style "vs. exhaustive optimum": small instances where the
// multiprocessor exhaustive search is tractable. Panel (b), venue style
// "relaxed ratio vs. lower bound" (the group's Fig. 4(b) methodology):
// larger instances normalized by the fractional lower bound — ratios above 1
// include both the algorithm gap and the integrality gap of the bound.
//
// Expected shape: LTF+per-processor-DP stays close to optimal (the LTF
// pedigree), the global greedy is comparable, and MP-RAND trails both,
// degrading as M grows.
#include <iostream>

#include "bench_util.hpp"

int main() {
  using namespace retask;

  const PolynomialPowerModel model = PolynomialPowerModel::xscale();
  const auto lineup = standard_multiproc_lineup();

  std::cout << "Fig. R4(a): average objective ratio vs. exhaustive optimum\n"
               "(XScale ideal DVS, dormant-enable, per-system load 0.9*M, 10 instances)\n\n";
  {
    const auto reference = [](const RejectionProblem& p) {
      return MultiProcExhaustiveSolver().solve(p).objective();
    };
    std::vector<bench::SweepPoint> sweep;
    for (const int m : {2, 3, 4}) {
      const int n = m == 2 ? 12 : (m == 3 ? 10 : 8);
      sweep.push_back({static_cast<double>(m), [m, n, &model](std::uint64_t seed) {
                         ScenarioConfig config;
                         config.task_count = n;
                         config.load = 0.9 * m;
                         config.resolution = 400.0;
                         config.penalty_scale = 1.0;
                         config.processor_count = m;
                         config.seed = seed;
                         return make_scenario(config, model);
                       }});
    }
    bench::run_sweep("Fig R4a - ratio vs optimal, processors M (n=12/10/8)", "M", sweep,
                     lineup, reference, 10);
  }

  std::cout << "\nFig. R4(b): relaxed ratio vs. fractional lower bound\n"
               "(n = 5*M tasks, per-system load 1.4*M, 15 instances per point)\n\n";
  {
    const auto reference = [](const RejectionProblem& p) { return fractional_lower_bound(p); };
    std::vector<bench::SweepPoint> sweep;
    for (const int m : {2, 4, 8}) {
      sweep.push_back({static_cast<double>(m), [m, &model](std::uint64_t seed) {
                         ScenarioConfig config;
                         config.task_count = 5 * m;
                         config.load = 1.4 * m;
                         config.resolution = 1000.0;
                         config.penalty_scale = 1.0;
                         config.processor_count = m;
                         config.seed = seed;
                         return make_scenario(config, model);
                       }});
    }
    bench::run_sweep("Fig R4b - relaxed ratio vs lower bound, processors M (n=5M)", "M",
                     sweep, lineup, reference, 15);
  }
  return 0;
}
