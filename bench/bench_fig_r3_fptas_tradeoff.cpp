// Fig. R3 — FPTAS quality/runtime trade-off.
//
// Epsilon swept from 1.0 down to 0.01 on overloaded instances (n = 40, load
// 1.8). For each epsilon the table reports the mean and worst objective
// ratio against the exact DP and the mean wall-clock time. The (1+eps)
// guarantee must hold at every point; runtime grows roughly like 1/eps.
#include <chrono>
#include <iostream>

#include "bench_util.hpp"

int main() {
  using namespace retask;
  using Clock = std::chrono::steady_clock;

  const PolynomialPowerModel model = PolynomialPowerModel::xscale();
  const ExactDpSolver dp;
  const int instances = 10;

  const auto make_instance = [&model](std::uint64_t seed) {
    ScenarioConfig config;
    config.task_count = 40;
    config.load = 1.8;
    config.resolution = 8000.0;
    config.penalty_scale = 1.0;
    config.seed = seed;
    return make_scenario(config, model);
  };

  std::cout << "Fig. R3: FPTAS quality and runtime vs. epsilon (n=40, load 1.8,\n"
               "XScale ideal DVS, " << instances << " instances per point)\n\n";

  Table table("Fig R3 - FPTAS epsilon trade-off",
              {"epsilon", "mean ratio", "worst ratio", "1+eps bound", "mean ms"});
  for (const double eps : {1.0, 0.5, 0.2, 0.1, 0.05, 0.02, 0.01}) {
    const FptasSolver fptas(eps);
    OnlineStats ratio;
    OnlineStats millis;
    for (int k = 0; k < instances; ++k) {
      const RejectionProblem p = make_instance(static_cast<std::uint64_t>(k) + 1);
      const double opt = dp.solve(p).objective();
      const auto t0 = Clock::now();
      const double approx = fptas.solve(p).objective();
      const auto t1 = Clock::now();
      ratio.add(opt > 0.0 ? approx / opt : 1.0);
      millis.add(std::chrono::duration<double, std::milli>(t1 - t0).count());
      if (approx > opt * (1.0 + eps) + 1e-9) {
        std::cerr << "GUARANTEE VIOLATED at eps=" << eps << " seed=" << k + 1 << '\n';
        return 1;
      }
    }
    table.add_row({eps, ratio.mean(), ratio.max(), 1.0 + eps, millis.mean()}, 4);
  }
  bench::print_table(table);
  return 0;
}
