// Fig. R11 — Heterogeneous two-PE system (DVS + non-DVS PE) with rejection.
//
// Mirrors the source line's heterogeneous evaluation (their Figs. 7 and 8:
// an ideal DVS PE plus an FPGA-like non-DVS PE, inverse and proportional
// task models, the total non-DVS demand U2* swept) with rejection folded in.
// Normalized to the exhaustive two-PE optimum (n = 10). Expected shape:
// local search tracks the optimum closely; plain greedy degrades as U2*
// grows (placement mistakes get costlier); DVS-ONLY quantifies how much the
// second PE buys and is the worst column when the DVS side is overloaded.
#include <iostream>

#include "bench_util.hpp"

int main() {
  using namespace retask;

  const PolynomialPowerModel model = PolynomialPowerModel::xscale();
  const int instances = 12;

  const struct {
    Pe2EnergyModel energy;
    Pe2Relation relation;
    const char* label;
  } panels[] = {
      {Pe2EnergyModel::kWorkloadIndependent, Pe2Relation::kInverse,
       "workload-independent PE, inverse model"},
      {Pe2EnergyModel::kWorkloadIndependent, Pe2Relation::kProportional,
       "workload-independent PE, proportional model"},
      {Pe2EnergyModel::kWorkloadDependent, Pe2Relation::kInverse,
       "workload-dependent PE, inverse model"},
      {Pe2EnergyModel::kWorkloadDependent, Pe2Relation::kProportional,
       "workload-dependent PE, proportional model"},
  };

  std::cout << "Fig. R11: two-PE rejection, mean objective ratio vs. exhaustive optimum\n"
               "(n=10, DVS load 1.3, XScale DVS PE + 0.3 W non-DVS PE, " << instances
            << " instances per point)\n\n";

  const TwoPeGreedySolver greedy;
  const TwoPeEGreedySolver e_greedy;
  const TwoPeLocalSearchSolver ls;
  const TwoPeOffloadDpSolver offload_dp(0.05);
  const TwoPeDvsOnlySolver dvs_only;
  const TwoPeExhaustiveSolver opt;

  for (const auto& panel : panels) {
    Table table(std::string("Fig R11 - ") + panel.label,
                {"U2*", "2PE-GREEDY", "2PE-E-GREEDY", "2PE-LS", "2PE-DP(.05)", "DVS-ONLY"});
    for (const double u2 : {0.8, 1.2, 1.6, 2.0, 2.4}) {
      OnlineStats r_greedy;
      OnlineStats r_egreedy;
      OnlineStats r_ls;
      OnlineStats r_dp;
      OnlineStats r_dvs;
      for (int k = 1; k <= instances; ++k) {
        TwoPeWorkloadConfig config;
        config.task_count = 10;
        config.dvs_load = 1.3;
        config.resolution = 400.0;
        config.u2_total = u2;
        config.relation = panel.relation;
        config.penalty_scale = 1.5;
        config.energy_per_cycle_ref = penalty_anchor(model);
        Rng rng(static_cast<std::uint64_t>(k) * 613 + 11);
        std::vector<TwoPeTask> tasks = generate_two_pe_tasks(config, rng);
        EnergyCurve curve(model, 1.0, IdleDiscipline::kDormantEnable);
        const TwoPeProblem p(std::move(tasks), std::move(curve), 1.0 / 400.0, 0.3,
                             panel.energy);
        const double best = opt.solve(p).objective();
        r_greedy.add(greedy.solve(p).objective() / best);
        r_egreedy.add(e_greedy.solve(p).objective() / best);
        r_ls.add(ls.solve(p).objective() / best);
        r_dp.add(offload_dp.solve(p).objective() / best);
        r_dvs.add(dvs_only.solve(p).objective() / best);
      }
      table.add_row({u2, r_greedy.mean(), r_egreedy.mean(), r_ls.mean(), r_dp.mean(),
                     r_dvs.mean()}, 4);
    }
    bench::print_table(table);
    std::cout << '\n';
  }
  return 0;
}
