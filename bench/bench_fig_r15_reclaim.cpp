// Fig. R15 — Run-time slack reclamation under WCET pessimism.
//
// Tasks are planned at worst-case cycles but execute only a fraction of
// them; the actual/WCET ratio sweeps from 20% to 100%. For each ratio the
// table reports the mean frame energy of the static policy (keep the WCET
// speed), the greedy reclaimer (rescale after each completion), and the
// clairvoyant bound (knows actual demands upfront), normalized to the
// clairvoyant energy.
//
// Expected shape: at ratio 1 all three coincide; as pessimism grows the
// static policy's ratio climbs (it sprints at an unnecessarily high speed,
// then idles) while greedy reclamation stays within a few percent of
// clairvoyant — the reclamation literature's classic result.
#include <iostream>

#include "bench_util.hpp"

int main() {
  using namespace retask;

  const PolynomialPowerModel model = PolynomialPowerModel::xscale();
  const EnergyCurve frame_curve(model, 1.0, IdleDiscipline::kDormantEnable);
  const int instances = 20;

  std::cout << "Fig. R15: slack reclamation, energy normalized to clairvoyant\n"
               "(n=8, WCET load 0.9, XScale ideal DVS, " << instances
            << " instances per point)\n\n";

  Table table("Fig R15 - energy vs actual/WCET ratio",
              {"actual/WCET", "STATIC", "GREEDY-RECLAIM", "clairvoyant J"});

  for (const double ratio : {0.2, 0.4, 0.6, 0.8, 1.0}) {
    OnlineStats r_static;
    OnlineStats r_greedy;
    OnlineStats e_oracle;
    for (int k = 1; k <= instances; ++k) {
      ScenarioConfig config;
      config.task_count = 8;
      config.load = 0.9;
      config.resolution = 900.0;
      config.seed = static_cast<std::uint64_t>(k);
      const RejectionProblem instance = make_scenario(config, model);
      const std::vector<FrameTask>& tasks = instance.tasks().tasks();
      Rng rng(static_cast<std::uint64_t>(k) * 277 + 1);
      const double lo = std::max(0.05, ratio - 0.1);
      const double hi = std::min(1.0, ratio + 0.1);
      const std::vector<Cycles> actual = draw_actual_cycles(tasks, lo, hi, rng);

      const double kappa = instance.work_per_cycle();
      const double oracle =
          simulate_frame_reclaim(tasks, actual, kappa, frame_curve, ReclaimPolicy::kClairvoyant)
              .energy;
      const double stat =
          simulate_frame_reclaim(tasks, actual, kappa, frame_curve, ReclaimPolicy::kStatic)
              .energy;
      const double greedy =
          simulate_frame_reclaim(tasks, actual, kappa, frame_curve, ReclaimPolicy::kGreedy)
              .energy;
      if (oracle > 0.0) {
        r_static.add(stat / oracle);
        r_greedy.add(greedy / oracle);
        e_oracle.add(oracle);
      }
    }
    table.add_row({ratio, r_static.mean(), r_greedy.mean(), e_oracle.mean()}, 4);
  }
  bench::print_table(table);
  return 0;
}
