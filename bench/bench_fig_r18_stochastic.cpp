// Fig. R18 — Stochastic execution times: reclamation policies on discrete
// frequency ladders.
//
// The admission solver fixes the accepted set (and the rejection rate) per
// instance; every accepted frame then replays matched seeded actual-cycle
// trajectories whose ACET/WCET ratio is uniform around 1 / (WCET/ACET). The
// WCET/ACET pessimism sweeps {1, 1.33, 2, 4}; each point reports the mean
// frame energy of every stochastic policy normalized to the continuous
// clairvoyant lower bound, on the continuous backend and on a 5-level
// frequency ladder.
//
// Expected shape: STATIC's ratio climbs with pessimism while the reclaiming
// policies stay within a few percent of clairvoyant (static > greedy > cc).
// LA-EDF is the classic gamble: its aggressive deferral forces a top-speed
// sprint when tasks run near worst case (worst column at pessimism 1) but
// converges to the bound under heavy pessimism. EXPECTED, pacing for the
// true mean ratio, tracks the winner on both ends. The ladder backend pays
// a small quantization premium on every policy, clairvoyant included.
#include <iostream>

#include "bench_util.hpp"

int main() {
  using namespace retask;

  const PolynomialPowerModel model = PolynomialPowerModel::xscale();

  ScenarioConfig scenario;
  scenario.task_count = 8;
  scenario.load = 1.1;  // some rejection pressure
  scenario.resolution = 900.0;

  StochasticSweepConfig config;
  config.scenario = scenario;
  config.solver = "greedy";
  config.instances = 12;
  config.trajectories = 12;
  config.seed0 = 1;
  config.trajectory_seed = 42;

  std::cout << "Fig. R18: stochastic reclamation, energy normalized to the continuous\n"
               "clairvoyant bound (n=8, WCET load 1.1, XScale, greedy admission,\n"
            << config.instances << " instances x " << config.trajectories
            << " matched trajectories per point)\n\n";

  for (const int ladder_levels : {0, 5}) {
    config.ladder_levels = ladder_levels;
    const std::string backend =
        ladder_levels == 0 ? "continuous DVS" : std::to_string(ladder_levels) + "-level ladder";
    Table table("Fig R18 - energy vs WCET/ACET pessimism (" + backend + ")",
                {"WCET/ACET", "reject%", "STATIC", "GREEDY", "CC-EDF", "LA-EDF", "EXPECTED",
                 "CLAIRVOYANT"});

    for (const double pessimism : {1.0, 4.0 / 3.0, 2.0, 4.0}) {
      const double mean = 1.0 / pessimism;
      TrajectoryDistribution dist;
      dist.kind = CycleDistribution::kUniform;
      dist.ratio_lo = std::max(0.05, mean - 0.1);
      dist.ratio_hi = std::min(1.0, mean + 0.1);
      config.distribution = dist;

      const StochasticSweepResult result = run_stochastic_sweep(config, model);
      const auto ratio_of = [&](StochasticPolicy policy) {
        for (const StochasticPolicyStats& stats : result.policies) {
          if (stats.policy == policy) return stats.ratio_to_clairvoyant.mean();
        }
        return 0.0;
      };
      table.add_row({pessimism, 100.0 * result.rejection_rate.mean(),
                     ratio_of(StochasticPolicy::kStatic), ratio_of(StochasticPolicy::kGreedy),
                     ratio_of(StochasticPolicy::kCycleConserving),
                     ratio_of(StochasticPolicy::kLookahead),
                     ratio_of(StochasticPolicy::kExpected),
                     ratio_of(StochasticPolicy::kClairvoyant)},
                    4);
    }
    bench::print_table(table);
    std::cout << "\n";
  }
  return 0;
}
