// Fig. R1 — Normalized objective vs. system load (uniprocessor).
//
// The core experiment family of the task-rejection evaluation: n = 12 tasks
// on one XScale-normalized ideal DVS processor, system load swept from
// comfortably feasible (0.4) to heavily overloaded (3.2). Every algorithm's
// objective is normalized to the optimal solution (exact DP; provably
// optimal, cross-checked against exhaustive search in the test suite).
//
// Expected shape: OPT-DP pins 1.0 everywhere; FPTAS(0.1) <= 1.1; the
// greedies track the optimum closely at low load and drift upward past load
// 1 where the accept/reject combinatorics bite; RAND is worst and
// deteriorates with load.
#include <iostream>

#include "bench_util.hpp"

int main() {
  using namespace retask;

  const PolynomialPowerModel model = PolynomialPowerModel::xscale();
  const auto lineup = standard_uniproc_lineup();
  const auto reference = [](const RejectionProblem& p) {
    return ExactDpSolver().solve(p).objective();
  };

  std::vector<bench::SweepPoint> sweep;
  for (const double load : {0.4, 0.8, 1.0, 1.2, 1.6, 2.0, 2.4, 2.8, 3.2}) {
    sweep.push_back({load, [load, &model](std::uint64_t seed) {
                       ScenarioConfig config;
                       config.task_count = 12;
                       config.load = load;
                       config.resolution = 1500.0;
                       config.penalty_scale = 1.0;
                       config.seed = seed;
                       return make_scenario(config, model);
                     }});
  }

  std::cout << "Fig. R1: average objective ratio vs. optimal (n=12, XScale ideal DVS,\n"
               "dormant-enable, uniform penalties, 20 instances per point)\n\n";
  // The sweep varies only the task sets — the power model, frame and
  // resolution are fixed — so every cell shares one (curve, work_per_cycle)
  // pair and a grid-wide energy memo is sound.
  bench::SweepOptions options;
  options.share_energy_memo = true;
  bench::run_sweep("Fig R1 - normalized objective vs system load", "load", sweep, lineup,
                   reference, 20, /*seed0=*/1, options);
  return 0;
}
