// Fig. R12 — Allocation-cost minimization under an energy constraint.
//
// Mirrors the source line's synthesis experiment (their Fig. 9(c): one ideal
// processor type, First-Fit vs. the RS-LEUF-style balanced allocator, the
// energy-constraint ratio gamma swept): the budget interpolates between the
// workload's minimum energy (gamma = 0, everything at the critical speed on
// many processors) and the energy of the tightest packing (gamma = 1).
// Costs are normalized to the provable lower bound. Expected shape: the
// balanced allocator stays near 1 everywhere; First-Fit needs extra
// processors when the budget is tight-to-moderate and small task counts
// leave it little room to balance — the gap closes as n grows.
#include <algorithm>
#include <iostream>

#include "bench_util.hpp"

int main() {
  using namespace retask;

  const PolynomialPowerModel model = PolynomialPowerModel::xscale();
  const int instances = 12;

  std::cout << "Fig. R12: normalized allocation cost vs. energy-constraint ratio gamma\n"
               "(total work 3.2 processors' worth, XScale ideal DVS, " << instances
            << " instances per point)\n\n";

  for (const int n : {10, 20, 40}) {
    Table table("Fig R12 - allocation cost, n = " + std::to_string(n),
                {"gamma", "First-Fit", "Balanced (RS-LEUF)", "LB procs"});
    for (const double gamma : {0.1, 0.25, 0.5, 0.75, 1.0}) {
      OnlineStats r_ff;
      OnlineStats r_bal;
      OnlineStats lb_procs;
      for (int k = 1; k <= instances; ++k) {
        FrameWorkloadConfig gen;
        gen.task_count = n;
        gen.target_load = 3.2;
        gen.resolution = 1600.0;
        Rng rng(static_cast<std::uint64_t>(k) * 409 + 3);
        AllocationProblem problem{generate_frame_tasks(gen, rng),
                                  EnergyCurve(model, 1.0, IdleDiscipline::kDormantEnable),
                                  1.0 / 1600.0, 1.0, 1.0};
        // Budget: interpolate between the integral minimum energy (one task
        // per processor — by convexity of E no partition can do better) and
        // the energy of the timing-floor packing.
        double e_min = 0.0;
        for (const FrameTask& task : problem.tasks.tasks()) {
          e_min += problem.curve.energy(problem.work_per_cycle *
                                        static_cast<double>(task.cycles));
        }
        const int m_timing = 4;  // ceil(3.2)
        const double e_max = std::max(balanced_energy(problem, m_timing), e_min * 1.05);
        problem.energy_budget = (e_min + gamma * (e_max - e_min)) * (1.0 + 1e-9);

        const int lb = allocation_lower_bound(problem);
        const AllocationResult ff = allocate_first_fit(problem);
        const AllocationResult bal = allocate_balanced(problem);
        check_allocation(problem, ff);
        check_allocation(problem, bal);
        r_ff.add(ff.cost / lb);
        r_bal.add(bal.cost / lb);
        lb_procs.add(lb);
      }
      table.add_row({gamma, r_ff.mean(), r_bal.mean(), lb_procs.mean()}, 4);
    }
    bench::print_table(table);
    std::cout << '\n';
  }
  return 0;
}
