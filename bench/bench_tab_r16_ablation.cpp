// Tab. R16 — Ablations of the library's design choices.
//
// (a) Two-speed hull emulation on non-ideal processors: energy of E(W) with
//     the lower-convex-hull time-sharing vs. the naive "single next-higher
//     speed" rule. Quantifies what the emulation buys per speed-table
//     granularity.
// (b) Exact marginal evaluation in the density greedy: the library's greedy
//     evaluates the true energy delta E(W) - E(W - w_i) at the current
//     load; the ablated variant uses a fixed per-work estimate (energy per
//     cycle at the critical speed), as a cheaper implementation would.
// (c) Local-search seeding: steepest descent from the density-greedy seed
//     (the library's choice) vs. from the plain feasible all-accept seed.
#include <algorithm>
#include <iostream>
#include <limits>
#include <numeric>

#include "bench_util.hpp"

namespace {

using namespace retask;

// (a) helper: single-speed (no time-sharing) energy on a table model,
// dormant-enable with free sleep.
double no_mix_energy(const TablePowerModel& model, double window, double work) {
  if (work <= 0.0) return 0.0;
  const double s_req = work / window;
  double best = std::numeric_limits<double>::infinity();
  for (const double s : model.available_speeds()) {
    if (s + 1e-12 < s_req) continue;
    best = std::min(best, (work / s) * model.power(s));
  }
  return best;
}

// (b)/(c) helper: steepest-descent single-flip local search from a given
// seed (mirrors MarginalGreedySolver's move loop).
double local_search_from(const RejectionProblem& problem, std::vector<bool> accepted) {
  Cycles load = problem.accepted_cycles(accepted);
  double objective = problem.energy_of_cycles(load) + problem.rejected_penalty(accepted);
  const std::size_t n = problem.size();
  for (std::size_t move = 0; move < 4 * n * n + 16; ++move) {
    double best_delta = -1e-12 * std::max(objective, 1.0);
    std::size_t best_index = n;
    for (std::size_t i = 0; i < n; ++i) {
      const FrameTask& task = problem.tasks()[i];
      double delta = 0.0;
      if (accepted[i]) {
        delta = task.penalty - (problem.energy_of_cycles(load) -
                                problem.energy_of_cycles(load - task.cycles));
      } else {
        if (load + task.cycles > problem.cycle_capacity()) continue;
        delta = (problem.energy_of_cycles(load + task.cycles) -
                 problem.energy_of_cycles(load)) -
                task.penalty;
      }
      if (delta < best_delta) {
        best_delta = delta;
        best_index = i;
      }
    }
    if (best_index == n) break;
    if (accepted[best_index]) {
      accepted[best_index] = false;
      load -= problem.tasks()[best_index].cycles;
    } else {
      accepted[best_index] = true;
      load += problem.tasks()[best_index].cycles;
    }
    objective += best_delta;
  }
  return problem.energy_of_cycles(load) + problem.rejected_penalty(accepted);
}

}  // namespace

int main() {
  using namespace retask;
  const PolynomialPowerModel ideal = PolynomialPowerModel::xscale();
  const int instances = 15;

  // ------------------------------------------------------------------ (a)
  std::cout << "Tab. R16(a): two-speed hull emulation vs single-speed rule\n"
               "(mean E_nomix / E_hull over the feasible load range)\n\n";
  {
    Table table("Tab R16a - what two-speed emulation buys",
                {"speed levels", "mean ratio", "worst ratio"});
    for (const int levels : {2, 3, 5, 9}) {
      const TablePowerModel model =
          TablePowerModel::sampled(0.08, 1.52, 3.0, 0.15, 1.0, levels);
      const EnergyCurve hull(model, 1.0, IdleDiscipline::kDormantEnable);
      OnlineStats ratio;
      for (int k = 1; k <= 40; ++k) {
        const double w = static_cast<double>(k) / 40.0;
        const double with_hull = hull.energy(w);
        const double without = no_mix_energy(model, 1.0, w);
        if (with_hull > 0.0) ratio.add(without / with_hull);
      }
      table.add_row({static_cast<double>(levels), ratio.mean(), ratio.max()}, 4);
    }
    bench::print_table(table);
  }

  // ------------------------------------------------------------------ (b)
  std::cout << "\nTab. R16(b): exact vs estimated marginal in the density greedy\n"
               "(objective ratio vs OPT-DP, n=12, " << instances << " instances per point)\n\n";
  {
    const ExactDpSolver dp;
    const DensityGreedySolver exact_greedy;
    Table table("Tab R16b - marginal evaluation ablation",
                {"load", "exact marginal", "estimated marginal"});
    for (const double load : {0.8, 1.2, 1.6, 2.2, 3.0}) {
      OnlineStats r_exact;
      OnlineStats r_estimated;
      for (int k = 1; k <= instances; ++k) {
        ScenarioConfig config;
        config.task_count = 12;
        config.load = load;
        config.resolution = 1200.0;
        config.seed = static_cast<std::uint64_t>(k);
        const RejectionProblem p = make_scenario(config, ideal);
        const double opt = dp.solve(p).objective();

        r_exact.add(exact_greedy.solve(p).objective() / opt);

        // Estimated variant: reject every task whose penalty density is
        // below the critical-speed energy per work unit (after restoring
        // feasibility by density).
        const double e_star =
            ideal.energy_per_cycle(std::max(ideal.analytic_critical_speed(), 0.1));
        std::vector<std::size_t> order(p.size());
        std::iota(order.begin(), order.end(), std::size_t{0});
        std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
          return p.tasks()[a].penalty * static_cast<double>(p.tasks()[b].cycles) <
                 p.tasks()[b].penalty * static_cast<double>(p.tasks()[a].cycles);
        });
        std::vector<bool> accepted(p.size(), true);
        Cycles current = p.accepted_cycles(accepted);
        for (const std::size_t i : order) {
          const FrameTask& task = p.tasks()[i];
          const double density = task.penalty / (p.work_of(i));
          const bool overloaded = current > p.cycle_capacity();
          if (overloaded || density < e_star) {
            accepted[i] = false;
            current -= task.cycles;
          }
        }
        const RejectionSolution estimated = make_solution_on_one(p, std::move(accepted));
        r_estimated.add(estimated.objective() / opt);
      }
      table.add_row({load, r_exact.mean(), r_estimated.mean()}, 4);
    }
    bench::print_table(table);
  }

  // ------------------------------------------------------------------ (c)
  std::cout << "\nTab. R16(c): local-search seeding (objective ratio vs OPT-DP)\n\n";
  {
    const ExactDpSolver dp;
    const DensityGreedySolver greedy;
    const AllAcceptSolver all_accept;
    Table table("Tab R16c - LS seeding ablation",
                {"load", "LS(greedy seed)", "LS(all-accept seed)"});
    for (const double load : {1.2, 1.8, 2.6}) {
      OnlineStats from_greedy;
      OnlineStats from_all;
      for (int k = 1; k <= instances; ++k) {
        ScenarioConfig config;
        config.task_count = 12;
        config.load = load;
        config.resolution = 1200.0;
        config.seed = static_cast<std::uint64_t>(k);
        const RejectionProblem p = make_scenario(config, ideal);
        const double opt = dp.solve(p).objective();
        from_greedy.add(local_search_from(p, greedy.solve(p).accepted) / opt);
        from_all.add(local_search_from(p, all_accept.solve(p).accepted) / opt);
      }
      table.add_row({load, from_greedy.mean(), from_all.mean()}, 4);
    }
    bench::print_table(table);
    std::cout << "\n(Single-flip steepest descent reaches near-optimal points from either\n"
                 "seed on these instances; the greedy seed mainly saves moves.)\n";
  }
  return 0;
}
