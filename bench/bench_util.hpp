// Shared helpers for the experiment binaries: print a comparison table for a
// one-dimensional sweep in the house style (pretty table on stdout, with the
// sweep variable in the first column and one mean-ratio column per
// algorithm).
#ifndef RETASK_BENCH_BENCH_UTIL_HPP
#define RETASK_BENCH_BENCH_UTIL_HPP

#include <cstdlib>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "retask/retask.hpp"

namespace retask::bench {

/// Prints a table in the house style: pretty on stdout, plus CSV when the
/// RETASK_BENCH_CSV environment variable is set (for scripting/plotting).
inline void print_table(const Table& table) {
  table.write_pretty(std::cout);
  if (std::getenv("RETASK_BENCH_CSV") != nullptr) {
    std::cout << "\n[csv] " << table.title() << "\n";
    table.write_csv(std::cout);
  }
}

/// One sweep point: a label (e.g. the load value) and the factory/reference
/// pair that defines the instance family at that point.
struct SweepPoint {
  double value = 0.0;
  ProblemFactory factory;
};

/// Emits one long-format CSV block of per-point solver metrics
/// (point,algorithm,metric,value) when RETASK_BENCH_CSV is set. Only the
/// deterministic rows are printed (include_timers = false), so the block is
/// bit-identical at any RETASK_JOBS setting; it is empty (and skipped) in
/// RETASK_OBS=OFF builds.
inline void print_sweep_metrics(const std::string& title, const std::string& axis,
                                const std::vector<SweepPoint>& sweep,
                                const std::vector<std::vector<AlgoStats>>& stats) {
  if (std::getenv("RETASK_BENCH_CSV") == nullptr) return;
  bool any = false;
  for (const auto& point : stats) {
    for (const AlgoStats& s : point) any = any || !s.metrics.empty();
  }
  if (!any) return;
  std::cout << "\n[csv-metrics] " << title << "\n";
  std::cout << axis << ",algorithm,metric,value\n";
  for (std::size_t i = 0; i < stats.size(); ++i) {
    for (const AlgoStats& s : stats[i]) {
      for (const obs::MetricRow& row : obs::report_rows(s.metrics, /*include_timers=*/false)) {
        std::cout << sweep[i].value << "," << s.name << "," << row.name << "," << row.value
                  << "\n";
      }
    }
  }
}

/// Sweep-level knobs forwarded to the harness.
struct SweepOptions {
  /// Attach ONE energy memo to every cell of the grid instead of per-cell
  /// memos. Only set this when the sweep holds the power model, frame and
  /// resolution fixed across points (so every problem shares one
  /// (EnergyCurve, work_per_cycle) pair — the memo's correctness contract);
  /// the figure drivers that vary only the task sets (load/penalty sweeps)
  /// qualify.
  bool share_energy_memo = false;
  /// Forwarded to BatchOptions::lockstep: solve same-shape instance blocks
  /// through the lockstep batch solver (batch/lockstep.hpp). On by default —
  /// tables are bit-identical either way; RETASK_BATCH=off disables it at
  /// runtime without a rebuild.
  bool lockstep = true;
};

/// Runs `lineup` over every sweep point (instances per point) and prints a
/// table: value | mean ratio per algorithm. Returns the table for callers
/// that also want CSV. The whole point x instance grid is solved in one
/// parallel region (RETASK_JOBS workers; see common/parallel.hpp) and
/// reduced in instance order, so the table is bit-identical at any job
/// count.
inline Table run_sweep(const std::string& title, const std::string& axis,
                       const std::vector<SweepPoint>& sweep,
                       const std::vector<std::unique_ptr<RejectionSolver>>& lineup,
                       const ReferenceObjective& reference, int instances,
                       std::uint64_t seed0 = 1, const SweepOptions& options = {}) {
  std::vector<std::string> columns{axis};
  for (const auto& solver : lineup) columns.push_back(solver->name());
  Table table(title, columns);
  std::vector<ProblemFactory> factories;
  factories.reserve(sweep.size());
  for (const SweepPoint& point : sweep) factories.push_back(point.factory);
  BatchOptions batch;
  if (options.share_energy_memo) batch.shared_energy_memo = std::make_shared<EnergyMemo>();
  batch.lockstep = options.lockstep;
  const auto stats =
      run_comparison_batch(factories, lineup, reference, instances, seed0, /*jobs=*/0, batch);
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    std::vector<double> row{sweep[i].value};
    for (const AlgoStats& s : stats[i]) row.push_back(s.ratio.mean());
    table.add_row(row, 4);
  }
  print_table(table);
  print_sweep_metrics(title, axis, sweep, stats);
  return table;
}

}  // namespace retask::bench

#endif  // RETASK_BENCH_BENCH_UTIL_HPP
