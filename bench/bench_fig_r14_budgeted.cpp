// Fig. R14 — Energy-budgeted acceptance: the value/budget Pareto frontier.
//
// The dual of the rejection objective: maximize accepted value under a hard
// energy budget. The budget sweeps from starvation to abundance (normalized
// to the energy of accepting everything the capacity allows); columns report
// the optimal value (DP), the density greedy, and the fractional upper
// bound, all normalized to the total value on offer.
//
// Expected shape: a concave frontier (cheap valuable work first); the greedy
// hugs the DP except at budget knees where integrality bites; the fractional
// bound is tight everywhere (gap <= one task's value).
#include <iostream>

#include "bench_util.hpp"

int main() {
  using namespace retask;

  const PolynomialPowerModel model = PolynomialPowerModel::xscale();
  const int instances = 15;

  std::cout << "Fig. R14: budgeted acceptance frontier (n=12, offered load 1.6, XScale,\n"
            << instances << " instances per point; values normalized to total on offer)\n\n";

  Table table("Fig R14 - value vs energy budget",
              {"budget ratio", "OPT-DP value", "GREEDY value", "fractional UB",
               "greedy/opt"});

  for (const double ratio : {0.1, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    OnlineStats v_dp;
    OnlineStats v_greedy;
    OnlineStats v_ub;
    OnlineStats gap;
    for (int k = 1; k <= instances; ++k) {
      ScenarioConfig config;
      config.task_count = 12;
      config.load = 1.6;
      config.resolution = 1200.0;
      config.penalty_scale = 1.0;
      config.seed = static_cast<std::uint64_t>(k);
      const RejectionProblem base = make_scenario(config, model);

      // Reference energy: accept as much work as fits at top speed.
      const double e_full = base.curve().energy(base.curve().max_workload());
      BudgetedProblem p{base.tasks(), base.curve(), base.work_per_cycle(), ratio * e_full};

      const double total_value = base.tasks().total_penalty();
      const BudgetedSolution dp = solve_budgeted_dp(p);
      const BudgetedSolution greedy = solve_budgeted_greedy(p);
      const double ub = budgeted_fractional_upper_bound(p);
      v_dp.add(dp.value / total_value);
      v_greedy.add(greedy.value / total_value);
      v_ub.add(ub / total_value);
      if (dp.value > 0.0) gap.add(greedy.value / dp.value);
    }
    table.add_row({ratio, v_dp.mean(), v_greedy.mean(), v_ub.mean(), gap.mean()}, 4);
  }
  bench::print_table(table);
  return 0;
}
