// Fig. R5 — Ideal vs. non-ideal (discrete-speed) processors.
//
// The optimal rejection objective under k-level speed tables (k = 2, 3, 5,
// 9, 17 samples of the XScale curve, plus the XScale-like 5-point preset),
// normalized to the ideal continuous processor's optimum, swept over load.
// The task sets are IDENTICAL across processors (generated once on the ideal
// model); only the energy curve changes, so the ratio isolates the cost of
// speed granularity. Two-speed hull emulation keeps even coarse tables
// within a few percent; the gap shrinks with k and never goes below 1.
#include <iostream>

#include "bench_util.hpp"

int main() {
  using namespace retask;

  const PolynomialPowerModel ideal = PolynomialPowerModel::xscale();
  const ExactDpSolver dp;
  const int instances = 15;

  const auto base_instance = [&ideal](double load, std::uint64_t seed) {
    ScenarioConfig config;
    config.task_count = 12;
    config.load = load;
    config.resolution = 1200.0;
    config.penalty_scale = 1.0;
    config.seed = seed;
    return make_scenario(config, ideal);
  };
  // Same tasks and cycle scale, different processor.
  const auto rebind = [](const RejectionProblem& p, const PowerModel& model) {
    return RejectionProblem(p.tasks(),
                            EnergyCurve(model, p.curve().window(), p.curve().idle()),
                            p.work_per_cycle(), p.processor_count());
  };

  std::vector<std::pair<std::string, std::unique_ptr<PowerModel>>> models;
  models.emplace_back("xscale5", TablePowerModel::xscale5().clone());
  for (const int k : {2, 3, 5, 9, 17}) {
    models.emplace_back("k=" + std::to_string(k),
                        TablePowerModel::sampled(0.08, 1.52, 3.0, 0.15, 1.0, k).clone());
  }

  std::cout << "Fig. R5: optimal objective on discrete-speed processors, normalized to the\n"
               "ideal continuous processor on identical task sets (n=12, dormant-enable,\n"
            << instances << " instances per point)\n\n";

  std::vector<std::string> columns{"load"};
  for (const auto& [label, _] : models) columns.push_back(label);
  Table table("Fig R5 - discrete-speed penalty vs ideal DVS", columns);

  for (const double load : {0.4, 0.8, 1.2, 1.6, 2.0, 2.6}) {
    std::vector<double> row{load};
    std::vector<OnlineStats> ratios(models.size());
    for (int k = 0; k < instances; ++k) {
      const RejectionProblem base = base_instance(load, static_cast<std::uint64_t>(k) + 1);
      const double ideal_obj = dp.solve(base).objective();
      for (std::size_t mi = 0; mi < models.size(); ++mi) {
        const RejectionProblem p = rebind(base, *models[mi].second);
        const double obj = dp.solve(p).objective();
        ratios[mi].add(ideal_obj > 0.0 ? obj / ideal_obj : 1.0);
      }
    }
    for (const OnlineStats& r : ratios) row.push_back(r.mean());
    table.add_row(row, 4);
  }
  bench::print_table(table);
  std::cout << "\n(Ratios >= 1 always; finer tables approach 1. The k-sweeps sample\n"
               "[0.15, 1.0] uniformly; xscale5 is the 5-point XScale-like preset.)\n";
  return 0;
}
