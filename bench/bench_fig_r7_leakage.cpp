// Fig. R7 — Leakage sweep: dormant-enable vs. dormant-disable.
//
// The speed-independent power beta1 swept from 0 to 0.4 W at fixed dynamic
// power 1.52 s^3 (load 1.2, n = 12). For each beta1 the table reports the
// critical speed, the optimal objective under both idle disciplines, and the
// optimal acceptance ratios. Expected shape: the critical speed grows like
// (beta1 / (2*1.52))^(1/3); the dormant-disable objective grows by about
// beta1 * D (the unavoidable leakage of the whole window) and its optimum
// rejects more tasks than dormant-enable at the same penalties, because
// execution buys less when idle time still burns power.
#include <iostream>

#include "bench_util.hpp"

int main() {
  using namespace retask;

  const ExactDpSolver dp;
  const int instances = 15;

  std::cout << "Fig. R7: leakage sweep (n=12, load 1.2, P(s) = beta1 + 1.52 s^3,\n"
            << instances << " instances per point)\n\n";

  Table table("Fig R7 - leakage: dormant-enable vs dormant-disable",
              {"beta1", "s_crit", "obj enable", "obj disable", "accept enable",
               "accept disable"});

  for (const double beta1 : {0.0, 0.05, 0.1, 0.2, 0.3, 0.4}) {
    const PolynomialPowerModel model(beta1, 1.52, 3.0, 0.0, 1.0);
    OnlineStats obj_enable;
    OnlineStats obj_disable;
    OnlineStats acc_enable;
    OnlineStats acc_disable;
    for (int k = 0; k < instances; ++k) {
      ScenarioConfig config;
      config.task_count = 12;
      config.load = 1.2;
      config.resolution = 1200.0;
      config.penalty_scale = 1.0;
      config.seed = static_cast<std::uint64_t>(k) + 1;

      config.idle = IdleDiscipline::kDormantEnable;
      const RejectionSolution enable = dp.solve(make_scenario(config, model));
      obj_enable.add(enable.objective());
      acc_enable.add(enable.acceptance_ratio());

      config.idle = IdleDiscipline::kDormantDisable;
      const RejectionSolution disable = dp.solve(make_scenario(config, model));
      obj_disable.add(disable.objective());
      acc_disable.add(disable.acceptance_ratio());
    }
    table.add_row({beta1, critical_speed(model), obj_enable.mean(), obj_disable.mean(),
                   acc_enable.mean(), acc_disable.mean()},
                  4);
  }
  bench::print_table(table);
  std::cout << "\n(obj disable >= obj enable at every beta1; the gap is the leakage the\n"
               "processor cannot sleep away. s_crit = (beta1/(2*1.52))^(1/3) clamped.)\n";
  return 0;
}
