// Tab. R9 — Acceptance ratio and objective decomposition vs. load.
//
// For the optimal solver and each heuristic: the mean fraction of accepted
// tasks and the mean energy share of the objective, across the load sweep.
// Expected shape: acceptance stays ~1 until load 1, then falls; the energy
// share of the optimal objective falls with load as penalties take over;
// the optimum sheds the cheapest-density tasks first, so its acceptance is
// NOT the highest — ALL-ACCEPT keeps more tasks at a worse objective.
#include <iostream>

#include "bench_util.hpp"

int main() {
  using namespace retask;

  const PolynomialPowerModel model = PolynomialPowerModel::xscale();
  const auto lineup = standard_uniproc_lineup();
  const auto reference = [](const RejectionProblem& p) {
    return ExactDpSolver().solve(p).objective();
  };
  const int instances = 20;

  std::cout << "Tab. R9: acceptance ratio and energy share vs. load (n=12, XScale ideal\n"
               "DVS, dormant-enable, " << instances << " instances per point)\n\n";

  std::vector<std::string> acc_columns{"load"};
  for (const auto& solver : lineup) acc_columns.push_back(solver->name());
  Table acceptance("Tab R9a - mean acceptance ratio", acc_columns);
  Table energy_share("Tab R9b - mean energy share of objective", acc_columns);

  for (const double load : {0.5, 0.8, 1.0, 1.2, 1.6, 2.0, 2.5, 3.0}) {
    const auto factory = [load, &model](std::uint64_t seed) {
      ScenarioConfig config;
      config.task_count = 12;
      config.load = load;
      config.resolution = 1500.0;
      config.penalty_scale = 1.0;
      config.seed = seed;
      return make_scenario(config, model);
    };
    // Acceptance straight from the harness; energy share recomputed here.
    const auto stats = run_comparison(factory, lineup, reference, instances);
    std::vector<double> acc_row{load};
    for (const AlgoStats& s : stats) acc_row.push_back(s.acceptance.mean());
    acceptance.add_row(acc_row, 4);

    std::vector<double> share_row{load};
    for (const auto& solver : lineup) {
      OnlineStats share;
      for (int k = 0; k < instances; ++k) {
        const RejectionProblem p = factory(static_cast<std::uint64_t>(k) + 1);
        const RejectionSolution s = solver->solve(p);
        share.add(s.objective() > 0.0 ? s.energy / s.objective() : 1.0);
      }
      share_row.push_back(share.mean());
    }
    energy_share.add_row(share_row, 4);
  }
  bench::print_table(acceptance);
  std::cout << '\n';
  bench::print_table(energy_share);
  return 0;
}
