// Fig. R6 — Periodic tasks under EDF: rejection quality plus job-level
// verification.
//
// Total demanded rate swept from 0.4 to 3.0 (rates above 1 = smax force
// rejections). Each instance is reduced to the frame problem over its
// hyper-period, solved by the full uniprocessor lineup, and normalized to
// the exact DP. Every solution is then re-executed by the discrete-event
// EDF simulator at the curve's execution speed: the table's last columns
// certify zero deadline misses and report the worst relative gap between
// simulated and analytic energy across ALL solutions at that sweep point.
#include <algorithm>
#include <cmath>
#include <iostream>

#include "bench_util.hpp"

int main() {
  using namespace retask;

  const PolynomialPowerModel model = PolynomialPowerModel::xscale();
  const auto lineup = standard_uniproc_lineup();
  const ExactDpSolver dp;
  const int instances = 10;

  std::cout << "Fig. R6: periodic tasks under EDF (n=14, XScale ideal DVS, dormant-enable,\n"
            << instances << " instances per point; every solution re-executed by the EDF\n"
               "simulator over one hyper-period)\n\n";

  std::vector<std::string> columns{"rate"};
  for (const auto& solver : lineup) columns.push_back(solver->name());
  columns.push_back("misses");
  columns.push_back("worst dE");
  Table table("Fig R6 - periodic rejection, normalized objective + EDF verification", columns);

  for (const double rate : {0.4, 0.8, 1.2, 1.6, 2.0, 2.5, 3.0}) {
    std::vector<OnlineStats> ratios(lineup.size());
    std::int64_t total_misses = 0;
    double worst_energy_gap = 0.0;

    for (int k = 0; k < instances; ++k) {
      PeriodicWorkloadConfig config;
      config.task_count = 14;
      config.total_rate = rate;
      config.penalty_scale = 1.0;
      config.energy_per_cycle_ref = penalty_anchor(model);
      Rng rng(static_cast<std::uint64_t>(k) * 977 + 1);
      const PeriodicTaskSet tasks = generate_periodic_tasks(config, rng);
      const PeriodicRejectionAdapter adapter(tasks, model, IdleDiscipline::kDormantEnable);
      const RejectionProblem& problem = adapter.frame_problem();
      const double opt = dp.solve(problem).objective();

      for (std::size_t a = 0; a < lineup.size(); ++a) {
        const RejectionSolution s = lineup[a]->solve(problem);
        ratios[a].add(opt > 0.0 ? s.objective() / opt : 1.0);

        const double speed = adapter.execution_speed_on(s, 0);
        if (speed > 0.0) {
          EdfSimConfig sim;
          sim.speed = speed;
          const EdfSimResult r = simulate_edf(tasks, s.accepted, sim, problem.curve());
          total_misses += r.deadline_misses;
          if (s.energy > 0.0) {
            worst_energy_gap =
                std::max(worst_energy_gap, std::abs(r.energy - s.energy) / s.energy);
          }
        }
      }
    }

    std::vector<double> row{rate};
    for (const OnlineStats& r : ratios) row.push_back(r.mean());
    row.push_back(static_cast<double>(total_misses));
    row.push_back(worst_energy_gap);
    table.add_row(row, 4);
  }
  bench::print_table(table);
  std::cout << "\n(misses = total EDF deadline misses across every solution at that point —\n"
               "must be 0; worst dE = worst |simulated - analytic| / analytic energy.)\n";
  return 0;
}
