// Fig. R10 — Dormant-mode overheads: consolidation and procrastination.
//
// Mirrors the group's leakage-aware evaluation (their Fig. 6: 8 processors,
// task count swept, two switch-overhead settings) with rejection folded in.
//
// Panel (a): multiprocessor schedules under per-wake energy Esw, normalized
// to the fractional lower bound of the overhead-free relaxation (a valid
// lower bound). LA-LTF+FF consolidates lightly loaded processors and must
// dominate plain LTF+DP, most visibly at small task counts / large Esw;
// with many tasks every processor is busy anyway and the gap closes.
//
// Panel (b): procrastination on periodic sets — energy of lazy vs. eager
// idle handling under growing Esw (lazy merges idle gaps, paying Esw fewer
// times), with the simulator certifying zero deadline misses.
#include <iostream>

#include "bench_util.hpp"

int main() {
  using namespace retask;

  const PolynomialPowerModel model = PolynomialPowerModel::xscale();
  const int processors = 8;
  const int instances = 12;

  std::cout << "Fig. R10(a): mean objective ratio vs. overhead-free lower bound\n"
               "(M=8, XScale, per-processor load 0.25, penalties x20, " << instances
            << " instances)\n\n";

  for (const double esw : {0.02, 0.08}) {
    std::vector<std::string> columns{"tasks", "MP-LTF+DP", "LA-LTF+FF", "MP-GREEDY"};
    Table table("Fig R10a - Esw = " + format_double(esw, 3), columns);
    const MultiProcLtfRejectSolver ltf;
    const LeakageAwareLtfFfSolver la;
    const MultiProcGreedySolver greedy;

    for (const int n : {8, 12, 16, 20, 24}) {
      OnlineStats r_ltf;
      OnlineStats r_la;
      OnlineStats r_greedy;
      for (int k = 1; k <= instances; ++k) {
        ScenarioConfig config;
        config.task_count = n;
        config.load = 0.25 * processors;
        config.resolution = 600.0;
        config.penalty_scale = 20.0;
        config.processor_count = processors;
        config.seed = static_cast<std::uint64_t>(k);
        const RejectionProblem free_problem = make_scenario(config, model);
        const RejectionProblem p(
            free_problem.tasks(),
            EnergyCurve(model, free_problem.curve().window(), IdleDiscipline::kDormantEnable,
                        SleepParams{0.0, esw}),
            free_problem.work_per_cycle(), processors);
        const double lb = fractional_lower_bound(strip_sleep_overheads(p));
        r_ltf.add(ltf.solve(p).objective() / lb);
        r_la.add(la.solve(p).objective() / lb);
        r_greedy.add(greedy.solve(p).objective() / lb);
      }
      table.add_row({static_cast<double>(n), r_ltf.mean(), r_la.mean(), r_greedy.mean()}, 4);
    }
    bench::print_table(table);
    std::cout << '\n';
  }

  std::cout << "Fig. R10(b): procrastination on periodic sets — lazy/eager energy ratio\n"
               "(n=8, rate 0.45, speed 1, " << instances << " instances; misses must be 0)\n\n";
  {
    Table table("Fig R10b - procrastination energy ratio vs Esw",
                {"Esw", "eager energy", "lazy energy", "lazy/eager", "gaps eager", "gaps lazy",
                 "misses"});
    for (const double esw : {0.0, 1.0, 3.0, 6.0, 12.0}) {
      OnlineStats eager_energy;
      OnlineStats lazy_energy;
      OnlineStats eager_gaps;
      OnlineStats lazy_gaps;
      std::int64_t misses = 0;
      for (int k = 1; k <= instances; ++k) {
        PeriodicWorkloadConfig config;
        config.task_count = 8;
        config.total_rate = 0.45;
        Rng rng(static_cast<std::uint64_t>(k) * 131 + 7);
        const PeriodicTaskSet tasks = generate_periodic_tasks(config, rng);
        const EnergyCurve curve(model, static_cast<double>(tasks.hyper_period()),
                                IdleDiscipline::kDormantEnable, SleepParams{2.0, esw});
        const EdfSimResult eager = simulate_edf(tasks, {}, {1.0, 1.0, 0.0, false}, curve);
        const EdfSimResult lazy = simulate_edf(tasks, {}, {1.0, 1.0, 0.0, true}, curve);
        misses += eager.deadline_misses + lazy.deadline_misses;
        eager_energy.add(eager.energy);
        lazy_energy.add(lazy.energy);
        eager_gaps.add(static_cast<double>(eager.idle_intervals));
        lazy_gaps.add(static_cast<double>(lazy.idle_intervals));
      }
      table.add_row({esw, eager_energy.mean(), lazy_energy.mean(),
                     lazy_energy.mean() / eager_energy.mean(), eager_gaps.mean(),
                     lazy_gaps.mean(), static_cast<double>(misses)},
                    4);
    }
    bench::print_table(table);
  }
  return 0;
}
