// Fig. R17 — Heterogeneous processor-type allocation under an energy budget.
//
// Mirrors the source line's synthesis experiments (their Fig. 9(a)/(b):
// normalized allocation cost over the number of processor types and over the
// energy-constraint ratio gamma, with E = Emin + gamma * (Emax - Emin)).
// Panel (a): small instances, cost normalized to the exhaustive optimum.
// Panel (b): gamma sweep, normalized to the fractional cost lower bound.
//
// Expected shape: the Lagrangian allocator (the LP-rounding surrogate) stays
// within a modest factor of optimal; the normalized cost falls as the
// budget loosens (cheap slow parts become usable) and grows mildly with the
// type count (more rounding opportunities to miss).
#include <algorithm>
#include <iostream>

#include "bench_util.hpp"

namespace {

using namespace retask;

/// Catalogue of `m` types: type k costs more and runs faster/hungrier.
std::vector<ProcessorType> make_catalogue(int m) {
  std::vector<ProcessorType> types;
  for (int k = 0; k < m; ++k) {
    const double top = 0.4 + 0.6 * static_cast<double>(k) / std::max(1, m - 1);
    std::vector<OperatingPoint> points;
    for (const double frac : {0.5, 1.0}) {
      const double s = top * frac;
      points.push_back({s, 0.05 + 1.52 * s * s * s});
    }
    types.push_back({"type" + std::to_string(k), 1.0 + 0.8 * k,
                     TablePowerModel(std::move(points), 0.05)});
  }
  return types;
}

HetAllocationProblem make_instance(int m, int n, std::uint64_t seed) {
  HetAllocationProblem problem;
  problem.types = make_catalogue(m);
  problem.window = 100.0;
  problem.energy_budget = 1.0;  // set by the caller
  Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    const Cycles base = rng.uniform_int(8, 36);
    HetTask task;
    task.id = i;
    for (int k = 0; k < m; ++k) {
      // Faster types also decode the workload slightly more efficiently.
      task.cycles_per_type.push_back(std::max<Cycles>(
          1, static_cast<Cycles>(static_cast<double>(base) * rng.uniform(0.85, 1.1))));
    }
    problem.tasks.push_back(std::move(task));
  }
  return problem;
}

/// [Emin, Emax] across feasible single-task options.
std::pair<double, double> energy_range(const HetAllocationProblem& problem) {
  double e_min = 0.0;
  double e_max = 0.0;
  for (std::size_t i = 0; i < problem.tasks.size(); ++i) {
    double lo = 1e300;
    double hi = 0.0;
    for (std::size_t j = 0; j < problem.types.size(); ++j) {
      for (std::size_t l = 0; l < problem.types[j].model.available_speeds().size(); ++l) {
        if (het_utilization(problem, i, j, l) <= 1.0) {
          lo = std::min(lo, het_energy(problem, i, j, l));
          hi = std::max(hi, het_energy(problem, i, j, l));
        }
      }
    }
    e_min += lo;
    e_max += hi;
  }
  return {e_min, e_max};
}

}  // namespace

int main() {
  const int instances = 12;

  std::cout << "Fig. R17(a): heterogeneous allocation, cost ratio vs exhaustive optimum\n"
               "(n=6, gamma=0.3, " << instances << " instances per point)\n\n";
  {
    Table table("Fig R17a - cost ratio vs number of types", {"types", "LAGRANGIAN/opt"});
    for (const int m : {2, 3, 4}) {
      OnlineStats ratio;
      for (int k = 1; k <= instances; ++k) {
        HetAllocationProblem p = make_instance(m, 6, static_cast<std::uint64_t>(k) * 31 + 7);
        const auto [e_min, e_max] = energy_range(p);
        p.energy_budget = (e_min + 0.3 * (e_max - e_min)) * (1.0 + 1e-9);
        const double opt = allocate_het_exhaustive(p).cost;
        const HetAllocationResult heur = allocate_het_lagrangian(p);
        check_het_allocation(p, heur);
        ratio.add(heur.cost / opt);
      }
      table.add_row({static_cast<double>(m), ratio.mean()}, 4);
    }
    bench::print_table(table);
  }

  std::cout << "\nFig. R17(b): cost normalized to the fractional lower bound vs gamma\n"
               "(m=4 types, n=20, " << instances << " instances per point)\n\n";
  {
    Table table("Fig R17b - normalized cost vs energy-constraint ratio",
                {"gamma", "LAGRANGIAN/LB", "mean cost"});
    for (const double gamma : {0.05, 0.2, 0.4, 0.7, 1.0}) {
      OnlineStats ratio;
      OnlineStats cost;
      for (int k = 1; k <= instances; ++k) {
        HetAllocationProblem p = make_instance(4, 20, static_cast<std::uint64_t>(k) * 57 + 3);
        const auto [e_min, e_max] = energy_range(p);
        p.energy_budget = (e_min + gamma * (e_max - e_min)) * (1.0 + 1e-9);
        const HetAllocationResult heur = allocate_het_lagrangian(p);
        check_het_allocation(p, heur);
        ratio.add(heur.cost / het_cost_lower_bound(p));
        cost.add(heur.cost);
      }
      table.add_row({gamma, ratio.mean(), cost.mean()}, 4);
    }
    bench::print_table(table);
  }
  return 0;
}
