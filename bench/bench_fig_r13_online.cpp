// Fig. R13 — Online admission control under increasing arrival load.
//
// Aperiodic jobs arrive Poisson-style; the processor runs the
// Optimal-Available speed rule and decides accept/reject at arrival. Swept:
// the offered load (arrival_rate * mean_work / smax). Columns per policy:
// objective (energy + rejected penalty), admission ratio — plus the
// offline clairvoyant REFERENCE: the fractional lower bound of the
// frame-relaxation (all jobs known upfront, one window to the horizon),
// which lower-bounds every online policy.
//
// Expected shape: below load 1 both policies admit everything and tie; past
// saturation FEASIBLE-ONLY burns energy on low-value work it happened to
// admit first, while the value-density filter keeps the objective close to
// the clairvoyant bound. The ratio to the bound grows with load for both
// (the price of non-clairvoyance plus the bound's own slack).
#include <algorithm>
#include <iostream>

#include "bench_util.hpp"

int main() {
  using namespace retask;

  const PolynomialPowerModel model = PolynomialPowerModel::xscale();
  const int instances = 10;
  const double duration = 80.0;
  const double horizon = 100.0;

  std::cout << "Fig. R13: online admission vs offered load (OA speed rule, XScale,\n"
            << instances << " instances per point, stream duration " << duration << ")\n\n";

  Table table("Fig R13 - online admission policies",
              {"load", "obj FEAS", "obj VALUE(1.0)", "obj VALUE(0.5)", "LB ratio FEAS",
               "LB ratio VALUE(1.0)", "admit FEAS", "admit VALUE(1.0)"});

  for (const double load : {0.3, 0.6, 0.9, 1.2, 1.8, 2.7}) {
    OnlineStats obj_feas;
    OnlineStats obj_value;
    OnlineStats obj_value_lo;
    OnlineStats ratio_feas;
    OnlineStats ratio_value;
    OnlineStats admit_feas;
    OnlineStats admit_value;

    for (int k = 1; k <= instances; ++k) {
      AperiodicWorkloadConfig gen;
      gen.duration = duration;
      gen.mean_work = 0.5;
      gen.arrival_rate = load / gen.mean_work;
      gen.penalty_scale = 1.0;
      gen.energy_per_work_ref = penalty_anchor(model);
      Rng rng(static_cast<std::uint64_t>(k) * 8191 + 17);
      const std::vector<AperiodicJob> jobs = generate_aperiodic_jobs(gen, 1.0, rng);
      if (jobs.empty()) continue;

      OnlineSimConfig config;
      config.work_per_cycle = 1.0 / gen.resolution;
      config.horizon = horizon;

      const OnlineSimResult feas = simulate_online(jobs, config, model);
      config.rule = AdmissionRule::kValueDensity;
      config.value_threshold = 1.0;
      const OnlineSimResult value = simulate_online(jobs, config, model);
      config.value_threshold = 0.5;
      const OnlineSimResult value_lo = simulate_online(jobs, config, model);

      // Clairvoyant lower bound: all jobs as one frame-relaxation over the
      // horizon (valid: it relaxes both release times and deadlines).
      std::vector<FrameTask> frame_tasks;
      frame_tasks.reserve(jobs.size());
      for (const AperiodicJob& job : jobs) {
        frame_tasks.push_back({job.id, job.cycles, job.penalty});
      }
      const RejectionProblem relax(FrameTaskSet(std::move(frame_tasks)),
                                   EnergyCurve(model, horizon, IdleDiscipline::kDormantEnable),
                                   config.work_per_cycle, 1);
      const double lb = fractional_lower_bound(relax);

      obj_feas.add(feas.objective());
      obj_value.add(value.objective());
      obj_value_lo.add(value_lo.objective());
      if (lb > 0.0) {
        ratio_feas.add(feas.objective() / lb);
        ratio_value.add(value.objective() / lb);
      }
      admit_feas.add(feas.admission_ratio());
      admit_value.add(value.admission_ratio());
    }
    table.add_row({load, obj_feas.mean(), obj_value.mean(), obj_value_lo.mean(),
                   ratio_feas.mean(), ratio_value.mean(), admit_feas.mean(),
                   admit_value.mean()},
                  4);
  }
  bench::print_table(table);
  std::cout << "\n(FEAS = admit all feasible; VALUE(t) = admit only jobs whose penalty covers\n"
               "t x estimated energy. LB = clairvoyant frame-relaxation lower bound.)\n";
  return 0;
}
