// Tab. R8 — Solver runtime scaling (google-benchmark).
//
// Wall-clock scaling of every algorithm along its natural axis:
// * greedy / local search / lower bound vs. task count n,
// * exact DP vs. cycle capacity (pseudo-polynomial),
// * FPTAS vs. 1/epsilon,
// * exhaustive search vs. n (exponential, small range).
#include <benchmark/benchmark.h>

#include "retask/retask.hpp"

namespace {

using namespace retask;

RejectionProblem instance(int n, double resolution, std::uint64_t seed = 1) {
  ScenarioConfig config;
  config.task_count = n;
  config.load = 1.6;
  config.resolution = resolution;
  config.penalty_scale = 1.0;
  config.seed = seed;
  const PolynomialPowerModel model = PolynomialPowerModel::xscale();
  return make_scenario(config, model);
}

void BM_DensityGreedy(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  const RejectionProblem p = instance(n, 50.0 * n);
  const DensityGreedySolver solver;
  for (auto _ : state) benchmark::DoNotOptimize(solver.solve(p).objective());
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DensityGreedy)->RangeMultiplier(4)->Range(16, 4096)->Complexity();

void BM_LocalSearch(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  const RejectionProblem p = instance(n, 50.0 * n);
  const MarginalGreedySolver solver;
  for (auto _ : state) benchmark::DoNotOptimize(solver.solve(p).objective());
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_LocalSearch)->RangeMultiplier(4)->Range(16, 256)->Complexity();

void BM_LowerBound(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  const RejectionProblem p = instance(n, 50.0 * n);
  for (auto _ : state) benchmark::DoNotOptimize(fractional_lower_bound(p));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_LowerBound)->RangeMultiplier(4)->Range(16, 4096)->Complexity();

void BM_ExactDpVsCapacity(benchmark::State& state) {
  // n fixed at 24; the capacity (= resolution) is the pseudo-polynomial axis.
  const auto resolution = static_cast<double>(state.range(0));
  const RejectionProblem p = instance(24, resolution);
  const ExactDpSolver solver;
  for (auto _ : state) benchmark::DoNotOptimize(solver.solve(p).objective());
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ExactDpVsCapacity)->RangeMultiplier(4)->Range(512, 32768)->Complexity();

void BM_FptasVsEpsilon(benchmark::State& state) {
  // state.range(0) = 1/epsilon.
  const double eps = 1.0 / static_cast<double>(state.range(0));
  const RejectionProblem p = instance(32, 100000.0);
  const FptasSolver solver(eps);
  for (auto _ : state) benchmark::DoNotOptimize(solver.solve(p).objective());
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FptasVsEpsilon)->RangeMultiplier(2)->Range(2, 64)->Complexity();

void BM_Exhaustive(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  const RejectionProblem p = instance(n, 30.0 * n);
  const ExhaustiveSolver solver;
  for (auto _ : state) benchmark::DoNotOptimize(solver.solve(p).objective());
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Exhaustive)->DenseRange(10, 18, 2)->Complexity();

void BM_EnergyCurveEval(benchmark::State& state) {
  const PolynomialPowerModel model = PolynomialPowerModel::xscale();
  const EnergyCurve curve(model, 1.0, IdleDiscipline::kDormantEnable);
  double w = 0.0;
  for (auto _ : state) {
    w += 0.001;
    if (w > 1.0) w = 0.0;
    benchmark::DoNotOptimize(curve.energy(w));
  }
}
BENCHMARK(BM_EnergyCurveEval);

void BM_EdfSimHyperPeriod(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  PeriodicWorkloadConfig config;
  config.task_count = n;
  config.total_rate = 0.9;
  Rng rng(5);
  const PeriodicTaskSet tasks = generate_periodic_tasks(config, rng);
  const PolynomialPowerModel model = PolynomialPowerModel::xscale();
  const EnergyCurve curve(model, static_cast<double>(tasks.hyper_period()),
                          IdleDiscipline::kDormantEnable);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulate_edf(tasks, {}, {1.0, 1.0, 0.0}, curve).busy_time);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_EdfSimHyperPeriod)->RangeMultiplier(2)->Range(4, 64)->Complexity();

}  // namespace

BENCHMARK_MAIN();
