// Fig. R2 — Normalized objective vs. penalty-to-energy scale lambda.
//
// Fixed overload (load 1.5), penalty scale swept over two decades. At tiny
// lambda rejection is nearly free and every reasonable heuristic finds the
// near-empty accept set; at huge lambda rejection is ruinous and the feasible
// max-penalty packing dominates; the interesting regime is lambda ~ 1 where
// penalties and marginal energies are comparable and the knapsack structure
// is hardest — heuristic gaps peak there.
//
// Run for all three penalty models (uniform / proportional / inverse).
#include <iostream>

#include "bench_util.hpp"

int main() {
  using namespace retask;

  const PolynomialPowerModel model = PolynomialPowerModel::xscale();
  const auto lineup = standard_uniproc_lineup();
  const auto reference = [](const RejectionProblem& p) {
    return ExactDpSolver().solve(p).objective();
  };

  const struct {
    PenaltyModel model;
    const char* label;
  } penalty_models[] = {
      {PenaltyModel::kUniform, "uniform penalties"},
      {PenaltyModel::kProportionalCycles, "cycle-proportional penalties"},
      {PenaltyModel::kInverseCycles, "cycle-inverse penalties"},
  };

  std::cout << "Fig. R2: average objective ratio vs. penalty scale (n=12, load 1.5,\n"
               "XScale ideal DVS, dormant-enable, 20 instances per point)\n\n";

  for (const auto& pm : penalty_models) {
    std::vector<bench::SweepPoint> sweep;
    for (const double lambda : {0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0}) {
      const PenaltyModel kind = pm.model;
      sweep.push_back({lambda, [lambda, kind, &model](std::uint64_t seed) {
                         ScenarioConfig config;
                         config.task_count = 12;
                         config.load = 1.5;
                         config.resolution = 1500.0;
                         config.penalty_model = kind;
                         config.penalty_scale = lambda;
                         config.seed = seed;
                         return make_scenario(config, model);
                       }});
    }
    // Model, frame and resolution are fixed across the lambda sweep (only
    // penalties move), so a grid-wide energy memo is sound.
    bench::SweepOptions options;
    options.share_energy_memo = true;
    bench::run_sweep(std::string("Fig R2 - ratio vs penalty scale (") + pm.label + ")",
                     "lambda", sweep, lineup, reference, 20, /*seed0=*/1, options);
    std::cout << '\n';
  }
  return 0;
}
