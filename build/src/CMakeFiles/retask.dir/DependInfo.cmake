
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/retask/common/math.cpp" "src/CMakeFiles/retask.dir/retask/common/math.cpp.o" "gcc" "src/CMakeFiles/retask.dir/retask/common/math.cpp.o.d"
  "/root/repo/src/retask/common/rng.cpp" "src/CMakeFiles/retask.dir/retask/common/rng.cpp.o" "gcc" "src/CMakeFiles/retask.dir/retask/common/rng.cpp.o.d"
  "/root/repo/src/retask/common/stats.cpp" "src/CMakeFiles/retask.dir/retask/common/stats.cpp.o" "gcc" "src/CMakeFiles/retask.dir/retask/common/stats.cpp.o.d"
  "/root/repo/src/retask/common/table.cpp" "src/CMakeFiles/retask.dir/retask/common/table.cpp.o" "gcc" "src/CMakeFiles/retask.dir/retask/common/table.cpp.o.d"
  "/root/repo/src/retask/core/algorithm_registry.cpp" "src/CMakeFiles/retask.dir/retask/core/algorithm_registry.cpp.o" "gcc" "src/CMakeFiles/retask.dir/retask/core/algorithm_registry.cpp.o.d"
  "/root/repo/src/retask/core/allocation.cpp" "src/CMakeFiles/retask.dir/retask/core/allocation.cpp.o" "gcc" "src/CMakeFiles/retask.dir/retask/core/allocation.cpp.o.d"
  "/root/repo/src/retask/core/budgeted.cpp" "src/CMakeFiles/retask.dir/retask/core/budgeted.cpp.o" "gcc" "src/CMakeFiles/retask.dir/retask/core/budgeted.cpp.o.d"
  "/root/repo/src/retask/core/exact_dp.cpp" "src/CMakeFiles/retask.dir/retask/core/exact_dp.cpp.o" "gcc" "src/CMakeFiles/retask.dir/retask/core/exact_dp.cpp.o.d"
  "/root/repo/src/retask/core/exhaustive.cpp" "src/CMakeFiles/retask.dir/retask/core/exhaustive.cpp.o" "gcc" "src/CMakeFiles/retask.dir/retask/core/exhaustive.cpp.o.d"
  "/root/repo/src/retask/core/fptas.cpp" "src/CMakeFiles/retask.dir/retask/core/fptas.cpp.o" "gcc" "src/CMakeFiles/retask.dir/retask/core/fptas.cpp.o.d"
  "/root/repo/src/retask/core/greedy.cpp" "src/CMakeFiles/retask.dir/retask/core/greedy.cpp.o" "gcc" "src/CMakeFiles/retask.dir/retask/core/greedy.cpp.o.d"
  "/root/repo/src/retask/core/het_allocation.cpp" "src/CMakeFiles/retask.dir/retask/core/het_allocation.cpp.o" "gcc" "src/CMakeFiles/retask.dir/retask/core/het_allocation.cpp.o.d"
  "/root/repo/src/retask/core/leakage_aware.cpp" "src/CMakeFiles/retask.dir/retask/core/leakage_aware.cpp.o" "gcc" "src/CMakeFiles/retask.dir/retask/core/leakage_aware.cpp.o.d"
  "/root/repo/src/retask/core/lower_bound.cpp" "src/CMakeFiles/retask.dir/retask/core/lower_bound.cpp.o" "gcc" "src/CMakeFiles/retask.dir/retask/core/lower_bound.cpp.o.d"
  "/root/repo/src/retask/core/multiproc.cpp" "src/CMakeFiles/retask.dir/retask/core/multiproc.cpp.o" "gcc" "src/CMakeFiles/retask.dir/retask/core/multiproc.cpp.o.d"
  "/root/repo/src/retask/core/periodic.cpp" "src/CMakeFiles/retask.dir/retask/core/periodic.cpp.o" "gcc" "src/CMakeFiles/retask.dir/retask/core/periodic.cpp.o.d"
  "/root/repo/src/retask/core/problem.cpp" "src/CMakeFiles/retask.dir/retask/core/problem.cpp.o" "gcc" "src/CMakeFiles/retask.dir/retask/core/problem.cpp.o.d"
  "/root/repo/src/retask/core/solution.cpp" "src/CMakeFiles/retask.dir/retask/core/solution.cpp.o" "gcc" "src/CMakeFiles/retask.dir/retask/core/solution.cpp.o.d"
  "/root/repo/src/retask/core/two_pe.cpp" "src/CMakeFiles/retask.dir/retask/core/two_pe.cpp.o" "gcc" "src/CMakeFiles/retask.dir/retask/core/two_pe.cpp.o.d"
  "/root/repo/src/retask/exp/harness.cpp" "src/CMakeFiles/retask.dir/retask/exp/harness.cpp.o" "gcc" "src/CMakeFiles/retask.dir/retask/exp/harness.cpp.o.d"
  "/root/repo/src/retask/exp/workload.cpp" "src/CMakeFiles/retask.dir/retask/exp/workload.cpp.o" "gcc" "src/CMakeFiles/retask.dir/retask/exp/workload.cpp.o.d"
  "/root/repo/src/retask/io/cli_options.cpp" "src/CMakeFiles/retask.dir/retask/io/cli_options.cpp.o" "gcc" "src/CMakeFiles/retask.dir/retask/io/cli_options.cpp.o.d"
  "/root/repo/src/retask/io/task_io.cpp" "src/CMakeFiles/retask.dir/retask/io/task_io.cpp.o" "gcc" "src/CMakeFiles/retask.dir/retask/io/task_io.cpp.o.d"
  "/root/repo/src/retask/power/critical_speed.cpp" "src/CMakeFiles/retask.dir/retask/power/critical_speed.cpp.o" "gcc" "src/CMakeFiles/retask.dir/retask/power/critical_speed.cpp.o.d"
  "/root/repo/src/retask/power/energy_curve.cpp" "src/CMakeFiles/retask.dir/retask/power/energy_curve.cpp.o" "gcc" "src/CMakeFiles/retask.dir/retask/power/energy_curve.cpp.o.d"
  "/root/repo/src/retask/power/polynomial_power.cpp" "src/CMakeFiles/retask.dir/retask/power/polynomial_power.cpp.o" "gcc" "src/CMakeFiles/retask.dir/retask/power/polynomial_power.cpp.o.d"
  "/root/repo/src/retask/power/sleep.cpp" "src/CMakeFiles/retask.dir/retask/power/sleep.cpp.o" "gcc" "src/CMakeFiles/retask.dir/retask/power/sleep.cpp.o.d"
  "/root/repo/src/retask/power/table_power.cpp" "src/CMakeFiles/retask.dir/retask/power/table_power.cpp.o" "gcc" "src/CMakeFiles/retask.dir/retask/power/table_power.cpp.o.d"
  "/root/repo/src/retask/sched/edf_sim.cpp" "src/CMakeFiles/retask.dir/retask/sched/edf_sim.cpp.o" "gcc" "src/CMakeFiles/retask.dir/retask/sched/edf_sim.cpp.o.d"
  "/root/repo/src/retask/sched/feasibility.cpp" "src/CMakeFiles/retask.dir/retask/sched/feasibility.cpp.o" "gcc" "src/CMakeFiles/retask.dir/retask/sched/feasibility.cpp.o.d"
  "/root/repo/src/retask/sched/frame_sim.cpp" "src/CMakeFiles/retask.dir/retask/sched/frame_sim.cpp.o" "gcc" "src/CMakeFiles/retask.dir/retask/sched/frame_sim.cpp.o.d"
  "/root/repo/src/retask/sched/online_sim.cpp" "src/CMakeFiles/retask.dir/retask/sched/online_sim.cpp.o" "gcc" "src/CMakeFiles/retask.dir/retask/sched/online_sim.cpp.o.d"
  "/root/repo/src/retask/sched/partition.cpp" "src/CMakeFiles/retask.dir/retask/sched/partition.cpp.o" "gcc" "src/CMakeFiles/retask.dir/retask/sched/partition.cpp.o.d"
  "/root/repo/src/retask/sched/reclaim.cpp" "src/CMakeFiles/retask.dir/retask/sched/reclaim.cpp.o" "gcc" "src/CMakeFiles/retask.dir/retask/sched/reclaim.cpp.o.d"
  "/root/repo/src/retask/sched/speed_schedule.cpp" "src/CMakeFiles/retask.dir/retask/sched/speed_schedule.cpp.o" "gcc" "src/CMakeFiles/retask.dir/retask/sched/speed_schedule.cpp.o.d"
  "/root/repo/src/retask/task/generator.cpp" "src/CMakeFiles/retask.dir/retask/task/generator.cpp.o" "gcc" "src/CMakeFiles/retask.dir/retask/task/generator.cpp.o.d"
  "/root/repo/src/retask/task/task.cpp" "src/CMakeFiles/retask.dir/retask/task/task.cpp.o" "gcc" "src/CMakeFiles/retask.dir/retask/task/task.cpp.o.d"
  "/root/repo/src/retask/task/task_set.cpp" "src/CMakeFiles/retask.dir/retask/task/task_set.cpp.o" "gcc" "src/CMakeFiles/retask.dir/retask/task/task_set.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
