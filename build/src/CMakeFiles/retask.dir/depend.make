# Empty dependencies file for retask.
# This may be replaced when dependencies are built.
