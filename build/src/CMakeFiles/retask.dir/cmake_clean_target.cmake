file(REMOVE_RECURSE
  "libretask.a"
)
