file(REMOVE_RECURSE
  "../bench/bench_fig_r6_periodic"
  "../bench/bench_fig_r6_periodic.pdb"
  "CMakeFiles/bench_fig_r6_periodic.dir/bench_fig_r6_periodic.cpp.o"
  "CMakeFiles/bench_fig_r6_periodic.dir/bench_fig_r6_periodic.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig_r6_periodic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
