# Empty dependencies file for bench_fig_r6_periodic.
# This may be replaced when dependencies are built.
