# Empty dependencies file for bench_fig_r17_het_alloc.
# This may be replaced when dependencies are built.
