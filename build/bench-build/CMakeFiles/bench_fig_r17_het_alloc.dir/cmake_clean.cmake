file(REMOVE_RECURSE
  "../bench/bench_fig_r17_het_alloc"
  "../bench/bench_fig_r17_het_alloc.pdb"
  "CMakeFiles/bench_fig_r17_het_alloc.dir/bench_fig_r17_het_alloc.cpp.o"
  "CMakeFiles/bench_fig_r17_het_alloc.dir/bench_fig_r17_het_alloc.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig_r17_het_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
