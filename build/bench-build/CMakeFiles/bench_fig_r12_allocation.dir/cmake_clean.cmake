file(REMOVE_RECURSE
  "../bench/bench_fig_r12_allocation"
  "../bench/bench_fig_r12_allocation.pdb"
  "CMakeFiles/bench_fig_r12_allocation.dir/bench_fig_r12_allocation.cpp.o"
  "CMakeFiles/bench_fig_r12_allocation.dir/bench_fig_r12_allocation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig_r12_allocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
