# Empty dependencies file for bench_fig_r12_allocation.
# This may be replaced when dependencies are built.
