file(REMOVE_RECURSE
  "../bench/bench_fig_r5_discrete_speeds"
  "../bench/bench_fig_r5_discrete_speeds.pdb"
  "CMakeFiles/bench_fig_r5_discrete_speeds.dir/bench_fig_r5_discrete_speeds.cpp.o"
  "CMakeFiles/bench_fig_r5_discrete_speeds.dir/bench_fig_r5_discrete_speeds.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig_r5_discrete_speeds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
