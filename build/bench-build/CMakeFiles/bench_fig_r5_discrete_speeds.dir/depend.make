# Empty dependencies file for bench_fig_r5_discrete_speeds.
# This may be replaced when dependencies are built.
