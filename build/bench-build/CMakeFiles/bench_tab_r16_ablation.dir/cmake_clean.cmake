file(REMOVE_RECURSE
  "../bench/bench_tab_r16_ablation"
  "../bench/bench_tab_r16_ablation.pdb"
  "CMakeFiles/bench_tab_r16_ablation.dir/bench_tab_r16_ablation.cpp.o"
  "CMakeFiles/bench_tab_r16_ablation.dir/bench_tab_r16_ablation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab_r16_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
