# Empty compiler generated dependencies file for bench_tab_r16_ablation.
# This may be replaced when dependencies are built.
