file(REMOVE_RECURSE
  "../bench/bench_fig_r15_reclaim"
  "../bench/bench_fig_r15_reclaim.pdb"
  "CMakeFiles/bench_fig_r15_reclaim.dir/bench_fig_r15_reclaim.cpp.o"
  "CMakeFiles/bench_fig_r15_reclaim.dir/bench_fig_r15_reclaim.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig_r15_reclaim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
