# Empty compiler generated dependencies file for bench_fig_r15_reclaim.
# This may be replaced when dependencies are built.
