file(REMOVE_RECURSE
  "../bench/bench_tab_r8_runtime"
  "../bench/bench_tab_r8_runtime.pdb"
  "CMakeFiles/bench_tab_r8_runtime.dir/bench_tab_r8_runtime.cpp.o"
  "CMakeFiles/bench_tab_r8_runtime.dir/bench_tab_r8_runtime.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab_r8_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
