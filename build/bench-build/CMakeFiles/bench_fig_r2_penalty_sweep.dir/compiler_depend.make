# Empty compiler generated dependencies file for bench_fig_r2_penalty_sweep.
# This may be replaced when dependencies are built.
