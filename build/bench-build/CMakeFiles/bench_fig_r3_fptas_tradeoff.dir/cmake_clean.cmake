file(REMOVE_RECURSE
  "../bench/bench_fig_r3_fptas_tradeoff"
  "../bench/bench_fig_r3_fptas_tradeoff.pdb"
  "CMakeFiles/bench_fig_r3_fptas_tradeoff.dir/bench_fig_r3_fptas_tradeoff.cpp.o"
  "CMakeFiles/bench_fig_r3_fptas_tradeoff.dir/bench_fig_r3_fptas_tradeoff.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig_r3_fptas_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
