# Empty compiler generated dependencies file for bench_fig_r3_fptas_tradeoff.
# This may be replaced when dependencies are built.
