# Empty dependencies file for bench_fig_r10_sleep_overhead.
# This may be replaced when dependencies are built.
