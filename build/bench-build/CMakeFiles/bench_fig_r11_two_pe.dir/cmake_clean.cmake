file(REMOVE_RECURSE
  "../bench/bench_fig_r11_two_pe"
  "../bench/bench_fig_r11_two_pe.pdb"
  "CMakeFiles/bench_fig_r11_two_pe.dir/bench_fig_r11_two_pe.cpp.o"
  "CMakeFiles/bench_fig_r11_two_pe.dir/bench_fig_r11_two_pe.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig_r11_two_pe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
