# Empty dependencies file for bench_fig_r11_two_pe.
# This may be replaced when dependencies are built.
