# Empty dependencies file for bench_fig_r1_load_sweep.
# This may be replaced when dependencies are built.
