# Empty dependencies file for bench_tab_r9_acceptance.
# This may be replaced when dependencies are built.
