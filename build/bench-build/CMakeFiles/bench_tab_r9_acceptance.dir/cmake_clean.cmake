file(REMOVE_RECURSE
  "../bench/bench_tab_r9_acceptance"
  "../bench/bench_tab_r9_acceptance.pdb"
  "CMakeFiles/bench_tab_r9_acceptance.dir/bench_tab_r9_acceptance.cpp.o"
  "CMakeFiles/bench_tab_r9_acceptance.dir/bench_tab_r9_acceptance.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab_r9_acceptance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
