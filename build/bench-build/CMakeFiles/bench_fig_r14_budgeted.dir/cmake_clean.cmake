file(REMOVE_RECURSE
  "../bench/bench_fig_r14_budgeted"
  "../bench/bench_fig_r14_budgeted.pdb"
  "CMakeFiles/bench_fig_r14_budgeted.dir/bench_fig_r14_budgeted.cpp.o"
  "CMakeFiles/bench_fig_r14_budgeted.dir/bench_fig_r14_budgeted.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig_r14_budgeted.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
