# Empty compiler generated dependencies file for bench_fig_r14_budgeted.
# This may be replaced when dependencies are built.
