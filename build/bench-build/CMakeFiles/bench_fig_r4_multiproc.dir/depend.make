# Empty dependencies file for bench_fig_r4_multiproc.
# This may be replaced when dependencies are built.
