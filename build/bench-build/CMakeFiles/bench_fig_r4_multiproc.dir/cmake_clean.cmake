file(REMOVE_RECURSE
  "../bench/bench_fig_r4_multiproc"
  "../bench/bench_fig_r4_multiproc.pdb"
  "CMakeFiles/bench_fig_r4_multiproc.dir/bench_fig_r4_multiproc.cpp.o"
  "CMakeFiles/bench_fig_r4_multiproc.dir/bench_fig_r4_multiproc.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig_r4_multiproc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
