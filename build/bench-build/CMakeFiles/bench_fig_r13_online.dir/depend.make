# Empty dependencies file for bench_fig_r13_online.
# This may be replaced when dependencies are built.
