file(REMOVE_RECURSE
  "../bench/bench_fig_r13_online"
  "../bench/bench_fig_r13_online.pdb"
  "CMakeFiles/bench_fig_r13_online.dir/bench_fig_r13_online.cpp.o"
  "CMakeFiles/bench_fig_r13_online.dir/bench_fig_r13_online.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig_r13_online.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
