file(REMOVE_RECURSE
  "../bench/bench_fig_r7_leakage"
  "../bench/bench_fig_r7_leakage.pdb"
  "CMakeFiles/bench_fig_r7_leakage.dir/bench_fig_r7_leakage.cpp.o"
  "CMakeFiles/bench_fig_r7_leakage.dir/bench_fig_r7_leakage.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig_r7_leakage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
