# Empty dependencies file for bench_fig_r7_leakage.
# This may be replaced when dependencies are built.
