# Empty dependencies file for sensor_periodic.
# This may be replaced when dependencies are built.
