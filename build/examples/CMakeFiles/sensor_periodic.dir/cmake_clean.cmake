file(REMOVE_RECURSE
  "CMakeFiles/sensor_periodic.dir/sensor_periodic.cpp.o"
  "CMakeFiles/sensor_periodic.dir/sensor_periodic.cpp.o.d"
  "sensor_periodic"
  "sensor_periodic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensor_periodic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
