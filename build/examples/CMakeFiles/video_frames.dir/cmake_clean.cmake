file(REMOVE_RECURSE
  "CMakeFiles/video_frames.dir/video_frames.cpp.o"
  "CMakeFiles/video_frames.dir/video_frames.cpp.o.d"
  "video_frames"
  "video_frames.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/video_frames.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
