# Empty compiler generated dependencies file for video_frames.
# This may be replaced when dependencies are built.
