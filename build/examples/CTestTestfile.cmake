# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_video_frames "/root/repo/build/examples/video_frames")
set_tests_properties(example_video_frames PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_sensor_periodic "/root/repo/build/examples/sensor_periodic")
set_tests_properties(example_sensor_periodic PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_design_space "/root/repo/build/examples/design_space")
set_tests_properties(example_design_space PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_admission_control "/root/repo/build/examples/admission_control")
set_tests_properties(example_admission_control PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_capacity_planning "/root/repo/build/examples/capacity_planning")
set_tests_properties(example_capacity_planning PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
