#----------------------------------------------------------------
# Generated CMake target import file for configuration "Release".
#----------------------------------------------------------------

# Commands may need to know the format version.
set(CMAKE_IMPORT_FILE_VERSION 1)

# Import target "retask::retask" for configuration "Release"
set_property(TARGET retask::retask APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(retask::retask PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libretask.a"
  )

list(APPEND _cmake_import_check_targets retask::retask )
list(APPEND _cmake_import_check_files_for_retask::retask "${_IMPORT_PREFIX}/lib/libretask.a" )

# Commands beyond this point should not need to know the version.
set(CMAKE_IMPORT_FILE_VERSION)
