include(${CMAKE_CURRENT_LIST_DIR}/retaskTargets.cmake)
