# Empty compiler generated dependencies file for test_task_set.
# This may be replaced when dependencies are built.
