file(REMOVE_RECURSE
  "CMakeFiles/test_task_set.dir/test_task_set.cpp.o"
  "CMakeFiles/test_task_set.dir/test_task_set.cpp.o.d"
  "test_task_set"
  "test_task_set.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_task_set.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
