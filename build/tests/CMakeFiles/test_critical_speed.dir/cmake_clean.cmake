file(REMOVE_RECURSE
  "CMakeFiles/test_critical_speed.dir/test_critical_speed.cpp.o"
  "CMakeFiles/test_critical_speed.dir/test_critical_speed.cpp.o.d"
  "test_critical_speed"
  "test_critical_speed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_critical_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
