# Empty dependencies file for test_critical_speed.
# This may be replaced when dependencies are built.
