# Empty compiler generated dependencies file for test_het_allocation.
# This may be replaced when dependencies are built.
