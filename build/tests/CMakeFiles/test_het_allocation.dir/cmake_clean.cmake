file(REMOVE_RECURSE
  "CMakeFiles/test_het_allocation.dir/test_het_allocation.cpp.o"
  "CMakeFiles/test_het_allocation.dir/test_het_allocation.cpp.o.d"
  "test_het_allocation"
  "test_het_allocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_het_allocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
