# Empty dependencies file for test_online_sim.
# This may be replaced when dependencies are built.
