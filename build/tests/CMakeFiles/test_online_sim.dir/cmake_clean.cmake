file(REMOVE_RECURSE
  "CMakeFiles/test_online_sim.dir/test_online_sim.cpp.o"
  "CMakeFiles/test_online_sim.dir/test_online_sim.cpp.o.d"
  "test_online_sim"
  "test_online_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_online_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
