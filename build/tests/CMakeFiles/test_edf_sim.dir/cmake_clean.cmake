file(REMOVE_RECURSE
  "CMakeFiles/test_edf_sim.dir/test_edf_sim.cpp.o"
  "CMakeFiles/test_edf_sim.dir/test_edf_sim.cpp.o.d"
  "test_edf_sim"
  "test_edf_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_edf_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
