file(REMOVE_RECURSE
  "CMakeFiles/test_exact_dp.dir/test_exact_dp.cpp.o"
  "CMakeFiles/test_exact_dp.dir/test_exact_dp.cpp.o.d"
  "test_exact_dp"
  "test_exact_dp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_exact_dp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
