file(REMOVE_RECURSE
  "CMakeFiles/test_two_pe.dir/test_two_pe.cpp.o"
  "CMakeFiles/test_two_pe.dir/test_two_pe.cpp.o.d"
  "test_two_pe"
  "test_two_pe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_two_pe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
