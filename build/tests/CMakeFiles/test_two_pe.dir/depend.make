# Empty dependencies file for test_two_pe.
# This may be replaced when dependencies are built.
