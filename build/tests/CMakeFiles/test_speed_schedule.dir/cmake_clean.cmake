file(REMOVE_RECURSE
  "CMakeFiles/test_speed_schedule.dir/test_speed_schedule.cpp.o"
  "CMakeFiles/test_speed_schedule.dir/test_speed_schedule.cpp.o.d"
  "test_speed_schedule"
  "test_speed_schedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_speed_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
