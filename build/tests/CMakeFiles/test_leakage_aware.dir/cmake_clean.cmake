file(REMOVE_RECURSE
  "CMakeFiles/test_leakage_aware.dir/test_leakage_aware.cpp.o"
  "CMakeFiles/test_leakage_aware.dir/test_leakage_aware.cpp.o.d"
  "test_leakage_aware"
  "test_leakage_aware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_leakage_aware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
