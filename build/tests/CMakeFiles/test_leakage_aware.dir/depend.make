# Empty dependencies file for test_leakage_aware.
# This may be replaced when dependencies are built.
