file(REMOVE_RECURSE
  "CMakeFiles/test_problem_solution.dir/test_problem_solution.cpp.o"
  "CMakeFiles/test_problem_solution.dir/test_problem_solution.cpp.o.d"
  "test_problem_solution"
  "test_problem_solution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_problem_solution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
