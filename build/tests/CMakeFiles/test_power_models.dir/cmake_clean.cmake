file(REMOVE_RECURSE
  "CMakeFiles/test_power_models.dir/test_power_models.cpp.o"
  "CMakeFiles/test_power_models.dir/test_power_models.cpp.o.d"
  "test_power_models"
  "test_power_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_power_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
