# Empty compiler generated dependencies file for test_power_models.
# This may be replaced when dependencies are built.
