# Empty dependencies file for test_task_io.
# This may be replaced when dependencies are built.
