file(REMOVE_RECURSE
  "CMakeFiles/test_task_io.dir/test_task_io.cpp.o"
  "CMakeFiles/test_task_io.dir/test_task_io.cpp.o.d"
  "test_task_io"
  "test_task_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_task_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
