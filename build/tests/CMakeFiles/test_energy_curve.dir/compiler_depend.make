# Empty compiler generated dependencies file for test_energy_curve.
# This may be replaced when dependencies are built.
