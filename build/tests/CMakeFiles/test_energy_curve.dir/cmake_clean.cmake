file(REMOVE_RECURSE
  "CMakeFiles/test_energy_curve.dir/test_energy_curve.cpp.o"
  "CMakeFiles/test_energy_curve.dir/test_energy_curve.cpp.o.d"
  "test_energy_curve"
  "test_energy_curve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_energy_curve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
