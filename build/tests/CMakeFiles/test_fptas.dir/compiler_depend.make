# Empty compiler generated dependencies file for test_fptas.
# This may be replaced when dependencies are built.
