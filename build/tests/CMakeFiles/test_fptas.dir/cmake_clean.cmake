file(REMOVE_RECURSE
  "CMakeFiles/test_fptas.dir/test_fptas.cpp.o"
  "CMakeFiles/test_fptas.dir/test_fptas.cpp.o.d"
  "test_fptas"
  "test_fptas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fptas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
