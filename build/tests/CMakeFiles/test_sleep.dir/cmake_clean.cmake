file(REMOVE_RECURSE
  "CMakeFiles/test_sleep.dir/test_sleep.cpp.o"
  "CMakeFiles/test_sleep.dir/test_sleep.cpp.o.d"
  "test_sleep"
  "test_sleep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sleep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
