# Empty compiler generated dependencies file for test_sleep.
# This may be replaced when dependencies are built.
