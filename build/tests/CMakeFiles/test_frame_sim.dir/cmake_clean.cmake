file(REMOVE_RECURSE
  "CMakeFiles/test_frame_sim.dir/test_frame_sim.cpp.o"
  "CMakeFiles/test_frame_sim.dir/test_frame_sim.cpp.o.d"
  "test_frame_sim"
  "test_frame_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_frame_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
