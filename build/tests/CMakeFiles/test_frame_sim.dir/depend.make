# Empty dependencies file for test_frame_sim.
# This may be replaced when dependencies are built.
