# Empty dependencies file for retask_cli.
# This may be replaced when dependencies are built.
