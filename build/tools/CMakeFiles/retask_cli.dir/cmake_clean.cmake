file(REMOVE_RECURSE
  "CMakeFiles/retask_cli.dir/retask_cli.cpp.o"
  "CMakeFiles/retask_cli.dir/retask_cli.cpp.o.d"
  "retask_cli"
  "retask_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/retask_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
