file(REMOVE_RECURSE
  "CMakeFiles/retask_gen.dir/retask_gen.cpp.o"
  "CMakeFiles/retask_gen.dir/retask_gen.cpp.o.d"
  "retask_gen"
  "retask_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/retask_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
