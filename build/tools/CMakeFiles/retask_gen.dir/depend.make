# Empty dependencies file for retask_gen.
# This may be replaced when dependencies are built.
