# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_frame_demo "/root/repo/build/tools/retask_cli" "--input" "/root/repo/examples/data/frame_demo.csv" "--capacity" "100" "--csv")
set_tests_properties(cli_frame_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_periodic_demo "/root/repo/build/tools/retask_cli" "--input" "/root/repo/examples/data/periodic_demo.csv" "--mode" "periodic" "--solver" "fptas:0.1")
set_tests_properties(cli_periodic_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_multiproc_demo "/root/repo/build/tools/retask_cli" "--input" "/root/repo/examples/data/frame_demo.csv" "--capacity" "60" "--processors" "2" "--solver" "mp-ltf-dp")
set_tests_properties(cli_multiproc_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_help "/root/repo/build/tools/retask_cli" "--help")
set_tests_properties(cli_help PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_unknown_flag "/root/repo/build/tools/retask_cli" "--definitely-not-a-flag")
set_tests_properties(cli_unknown_flag PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;17;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(gen_frame "/root/repo/build/tools/retask_gen" "--tasks" "6" "--load" "1.2" "--seed" "3")
set_tests_properties(gen_frame PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;19;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(gen_periodic "/root/repo/build/tools/retask_gen" "--mode" "periodic" "--tasks" "6" "--load" "0.9")
set_tests_properties(gen_periodic PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;20;add_test;/root/repo/tools/CMakeLists.txt;0;")
